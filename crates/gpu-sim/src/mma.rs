//! Functional model of the tensor-core matrix-multiply-accumulate (MMA) instruction.
//!
//! The paper's kernels are built around the Volta/Turing/Ampere half-precision MMA
//! instruction with granularity `M/N/K = 16/8/16` (§2.1). This module provides the
//! fragment shapes and the warp-level MMA building blocks used by the simulated
//! kernels in `shfl-kernels`. Operands are stored as `f32` in the simulator but can
//! be rounded through fp16 on the way in to mimic half-precision inputs with fp32
//! accumulation.
//!
//! The execution model is split the way the blocked kernels consume it:
//!
//! * [`warp_mma`] — the boundary-tolerant entry point: complete, padded fragments
//!   with optional fp16 rounding. Rounding is hoisted out of the `m·n·k` inner loop
//!   by pre-rounding each operand fragment once — bit-identical to rounding every
//!   element at its point of use, because the conversion is element-wise.
//! * [`warp_mma_prerounded`] — the same arithmetic for operands that were already
//!   rounded (e.g. by [`shfl_core::matrix::DenseMatrix::as_f16_rounded`]); no
//!   rounding, no padding logic.
//! * [`mma_row_block`] — the interior fast path: a staged `rows×kk` A-fragment
//!   times `kk` full-width rows of a pre-rounded B, accumulated into full-width
//!   output rows via contiguous-slice AXPY sweeps. No padding checks, no rounding,
//!   and the innermost loop runs over whole rows so it vectorises.
//! * [`mma_row_block_reg`] / [`mma_row_block_fused_acc`] — the prepared-plan
//!   microkernels: the same arithmetic with output chunks held in vector
//!   registers across the whole panel reduction (and, for the fused variant,
//!   the partial-tile zero/add sweeps of the stitched kernels folded in).
//!   Bit-identical to their cold counterparts; the packed panel layout of
//!   `shfl-kernels`' plans is what makes the whole reduction available per call.
//! * [`mma_row_block_reg_segments`] / [`mma_row_block_fused_acc_segments`] /
//!   [`mma_row_block_gather_fused_acc_segments`] — the fused multi-segment
//!   sweeps: one A-panel applied to several output-column [`SegmentSpan`]s of
//!   a full-width operand in a single call, so a serving engine that splits a
//!   wide request into bucket segments reads each packed weight panel **once**
//!   instead of once per segment. Each element's `k` contributions still
//!   arrive in ascending order, so the fused sweep is bit-identical to the
//!   per-segment calls.
//!
//! All three accumulate each output element in ascending-`k` order with a single
//! `f32` accumulator, so any decomposition of a GEMM into these calls that visits
//! `k` in ascending order produces bit-identical results.

pub use shfl_core::f16::round_to_f16;

/// Tensor-core MMA instruction shapes relevant to the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MmaShape {
    /// `mma.sync.m16n8k16` — the native half-precision shape on Volta/Turing/Ampere.
    M16N8K16,
    /// `mma.sync.m16n8k8` — the smaller reduction-depth variant.
    M16N8K8,
    /// `wmma` 16×16×16 — the CUDA C++ WMMA API tile.
    M16N16K16,
}

impl MmaShape {
    /// Rows of the accumulator fragment (`M`).
    pub fn m(&self) -> usize {
        16
    }

    /// Columns of the accumulator fragment (`N`).
    pub fn n(&self) -> usize {
        match self {
            MmaShape::M16N8K16 | MmaShape::M16N8K8 => 8,
            MmaShape::M16N16K16 => 16,
        }
    }

    /// Reduction depth of one instruction (`K`).
    pub fn k(&self) -> usize {
        match self {
            MmaShape::M16N8K16 | MmaShape::M16N16K16 => 16,
            MmaShape::M16N8K8 => 8,
        }
    }

    /// Multiply-accumulate operations performed by one instruction.
    pub fn macs(&self) -> usize {
        self.m() * self.n() * self.k()
    }

    /// FLOPs performed by one instruction (2 FLOPs per MAC).
    pub fn flops(&self) -> usize {
        2 * self.macs()
    }

    /// Number of MMA instructions needed to cover an `m × n × k` tile, rounding each
    /// dimension up to the instruction granularity. This is the quantity the paper's
    /// §2.1 calls the "matrix-shaped instruction granularity" cost: tiles smaller than
    /// the instruction still pay for a full instruction.
    pub fn instructions_for(&self, m: usize, n: usize, k: usize) -> usize {
        let mi = m.div_ceil(self.m());
        let ni = n.div_ceil(self.n());
        let ki = k.div_ceil(self.k());
        mi * ni * ki
    }

    /// Fraction of the MACs issued by [`MmaShape::instructions_for`] that are useful
    /// for an `m × n × k` tile (1.0 when every dimension is a multiple of the
    /// instruction shape).
    pub fn utilization_for(&self, m: usize, n: usize, k: usize) -> f64 {
        if m == 0 || n == 0 || k == 0 {
            return 0.0;
        }
        let useful = (m * n * k) as f64;
        let issued = (self.instructions_for(m, n, k) * self.macs()) as f64;
        useful / issued
    }
}

/// Largest fragment buffer any [`MmaShape`] needs (`16×16` operands).
const MAX_FRAGMENT: usize = 16 * 16;

/// Performs one warp-level MMA: `c[m×n] += a[m×k] · b[k×n]`, all row-major dense
/// fragments, with operands optionally rounded through fp16 and accumulation in f32.
///
/// This is the boundary-path entry point of the functional kernels: callers stage
/// complete (zero-padded) fragments and invoke it per `mma.sync`. When
/// `round_operands_to_f16` is set, each operand fragment is pre-rounded once into a
/// stack buffer before the multiply loops — the fp16 conversion is element-wise, so
/// this produces bit-identical results to the historical implementation that
/// re-rounded both operands inside the `m·n·k` inner loop, at `m·k + k·n` instead of
/// `2·m·n·k` conversions.
///
/// # Panics
///
/// Panics if the slices do not match the fragment dimensions
/// (`a.len() == m*k`, `b.len() == k*n`, `c.len() == m*n`).
pub fn warp_mma(shape: MmaShape, a: &[f32], b: &[f32], c: &mut [f32], round_operands_to_f16: bool) {
    let (m, n, k) = (shape.m(), shape.n(), shape.k());
    assert_eq!(a.len(), m * k, "A fragment must be m*k elements");
    assert_eq!(b.len(), k * n, "B fragment must be k*n elements");
    assert_eq!(c.len(), m * n, "C fragment must be m*n elements");

    if round_operands_to_f16 {
        let mut a16 = [0.0f32; MAX_FRAGMENT];
        let mut b16 = [0.0f32; MAX_FRAGMENT];
        for (dst, src) in a16.iter_mut().zip(a.iter()) {
            *dst = round_to_f16(*src);
        }
        for (dst, src) in b16.iter_mut().zip(b.iter()) {
            *dst = round_to_f16(*src);
        }
        mma_loops(&a16[..a.len()], &b16[..b.len()], c, m, n, k);
    } else {
        mma_loops(a, b, c, m, n, k);
    }
}

/// Warp-level MMA on operands that are already fp16-rounded (or intentionally kept
/// in f32): `c[m×n] += a[m×k] · b[k×n]` with f32 accumulation and no rounding.
///
/// # Panics
///
/// Panics if the slices do not match the fragment dimensions.
pub fn warp_mma_prerounded(shape: MmaShape, a: &[f32], b: &[f32], c: &mut [f32]) {
    let (m, n, k) = (shape.m(), shape.n(), shape.k());
    assert_eq!(a.len(), m * k, "A fragment must be m*k elements");
    assert_eq!(b.len(), k * n, "B fragment must be k*n elements");
    assert_eq!(c.len(), m * n, "C fragment must be m*n elements");
    mma_loops(a, b, c, m, n, k);
}

/// The shared multiply-accumulate loops: ascending-`k` accumulation per output
/// element, one f32 accumulator each.
#[inline]
fn mma_loops(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Interior fast path of the blocked kernels: multiplies a staged, pre-rounded
/// `rows × kk` A-fragment by `kk` consecutive full-width rows of a pre-rounded B
/// operand, accumulating into `rows` full-width output rows:
/// `c[rows×width] += a[rows×kk] · b[kk×width]`.
///
/// There are no padding checks and no rounding — boundary tiles simply pass
/// shortened `rows`/`kk` (zero-padding a fragment and running the full loops adds
/// only exact zeros, so both conventions are bit-identical). The innermost loop is
/// a contiguous-slice AXPY over `width` elements, which the compiler vectorises;
/// per output element the `k` contributions still arrive in ascending order, so a
/// k-ascending sequence of `mma_row_block` calls matches [`warp_mma`] bit for bit.
///
/// # Panics
///
/// Panics if the slices do not match the stated dimensions
/// (`a.len() == rows*kk`, `b.len() == kk*width`, `c.len() == rows*width`).
pub fn mma_row_block(a: &[f32], rows: usize, kk: usize, b: &[f32], c: &mut [f32], width: usize) {
    assert_eq!(a.len(), rows * kk, "A fragment must be rows*kk elements");
    assert_eq!(b.len(), kk * width, "B block must be kk*width elements");
    assert_eq!(c.len(), rows * width, "C block must be rows*width elements");
    if rows == 0 || kk == 0 || width == 0 {
        return;
    }
    for (a_row, c_row) in a.chunks_exact(kk).zip(c.chunks_exact_mut(width)) {
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * width..(p + 1) * width];
            for (o, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Processes all full `BLK`-wide output chunks of one row for the
/// register-blocked microkernels, covering columns `j0 .. end` of a row whose
/// memory stride is `stride` (the single-segment kernels pass
/// `stride == end == width`; the multi-segment kernels sweep one segment's
/// column span of a wider row). Returns the first unprocessed column. The
/// chunk is held in vector registers across the whole `kk` reduction (wide
/// chunks give the superscalar units several independent accumulation
/// chains), loaded once and stored once. `LOAD_C` selects whether the chunk
/// starts from the existing `c` values (direct accumulation,
/// [`mma_row_block_reg`]) or from `+0.0` with one add into `c` at the end (the
/// fused partial of [`mma_row_block_fused_acc`]). Per output element the `kk`
/// products are applied in ascending order either way.
#[inline]
fn reg_row_chunks<const BLK: usize, const LOAD_C: bool>(
    a_row: &[f32],
    b: &[f32],
    c_row: &mut [f32],
    stride: usize,
    end: usize,
    mut j0: usize,
) -> usize {
    while j0 + BLK <= end {
        let mut part = [0.0f32; BLK];
        if LOAD_C {
            part.copy_from_slice(&c_row[j0..j0 + BLK]);
        }
        for (p, &av) in a_row.iter().enumerate() {
            let bs = &b[p * stride + j0..p * stride + j0 + BLK];
            for (o, &bv) in part.iter_mut().zip(bs.iter()) {
                *o += av * bv;
            }
        }
        let dst = &mut c_row[j0..j0 + BLK];
        if LOAD_C {
            dst.copy_from_slice(&part);
        } else {
            for (o, &p) in dst.iter_mut().zip(part.iter()) {
                *o += p;
            }
        }
        j0 += BLK;
    }
    j0
}

/// The register-block chunk cascade of the prepared microkernels: the widest
/// output chunk the per-row sweep starts from, descending by halves to 8 and
/// then a scalar tail.
///
/// Historically the cascade was a global 64 → 32 → 16 → 8 constant; the
/// prepared kernel plans now select it **per N-bucket**
/// ([`RegCascade::for_width`]), the same way they resolve their
/// `LaunchConfig`: a plan serving a narrow bucket starts its sweep at the
/// chunk width that can actually fill, instead of walking the failed
/// wider-chunk guards on every row. The cascade only changes how output
/// columns are grouped into register chunks — per output element the `kk`
/// products still accumulate in ascending order through one `f32` — so every
/// cascade is **bit-identical** (asserted by the unit tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegCascade {
    /// Widest chunk tried (64, 32, 16 or 8).
    largest: usize,
}

impl RegCascade {
    /// The full 64 → 32 → 16 → 8 cascade (the historical global default).
    pub const FULL: RegCascade = RegCascade { largest: 64 };

    /// The cascade suited to operands of `width` columns: the widest chunk
    /// that `width` can fill, floored at 8 so narrow tails still vectorise.
    pub fn for_width(width: usize) -> Self {
        let largest = match width {
            w if w >= 64 => 64,
            w if w >= 32 => 32,
            w if w >= 16 => 16,
            _ => 8,
        };
        RegCascade { largest }
    }

    /// The widest chunk this cascade starts from.
    pub fn largest_chunk(&self) -> usize {
        self.largest
    }
}

impl Default for RegCascade {
    fn default() -> Self {
        RegCascade::FULL
    }
}

/// One register-blocked column span of one row, dispatched to the active
/// [`SimdTier`](crate::simd::SimdTier): the explicit AVX2 / SSE2 sweeps when
/// the CPU supports them, the scalar cascade below otherwise. Covers columns
/// `start .. end` of a row stored with memory stride `stride`. Every tier is
/// bit-identical (the vector tiers only regroup independent output columns;
/// per element the `kk` products still accumulate in ascending order with
/// separate multiply and add), so the dispatch never changes a result.
#[inline]
fn reg_row_span<const LOAD_C: bool>(
    a_row: &[f32],
    b: &[f32],
    c_row: &mut [f32],
    stride: usize,
    start: usize,
    end: usize,
    cascade: RegCascade,
) {
    match crate::simd::active_tier() {
        // SAFETY: every caller guarantees `p * stride + end <= b.len()` for
        // all `p < a_row.len()` and `end <= c_row.len()` (asserted by the
        // public kernels); the tier is only returned when the CPU supports
        // the feature.
        #[cfg(target_arch = "x86_64")]
        crate::simd::SimdTier::Avx2 => unsafe {
            crate::simd::x86::plain_span_avx2::<LOAD_C>(a_row, b, stride, c_row, start, end)
        },
        // SAFETY: same bounds contract; SSE2 is baseline on x86-64.
        #[cfg(target_arch = "x86_64")]
        crate::simd::SimdTier::Sse2 => unsafe {
            crate::simd::x86::plain_span_sse2::<LOAD_C>(a_row, b, stride, c_row, start, end)
        },
        _ => reg_row_span_scalar::<LOAD_C>(a_row, b, c_row, stride, start, end, cascade),
    }
}

/// The scalar tier of [`reg_row_span`] (and the bit-identity oracle for the
/// vector tiers): the cascade of chunk widths (starting at
/// `cascade.largest_chunk()`, halving down to 8) followed by a scalar tail,
/// so narrow operands still vectorise.
#[inline]
fn reg_row_span_scalar<const LOAD_C: bool>(
    a_row: &[f32],
    b: &[f32],
    c_row: &mut [f32],
    stride: usize,
    start: usize,
    end: usize,
    cascade: RegCascade,
) {
    let mut j0 = start;
    if cascade.largest >= 64 {
        j0 = reg_row_chunks::<64, LOAD_C>(a_row, b, c_row, stride, end, j0);
    }
    if cascade.largest >= 32 {
        j0 = reg_row_chunks::<32, LOAD_C>(a_row, b, c_row, stride, end, j0);
    }
    if cascade.largest >= 16 {
        j0 = reg_row_chunks::<16, LOAD_C>(a_row, b, c_row, stride, end, j0);
    }
    j0 = reg_row_chunks::<8, LOAD_C>(a_row, b, c_row, stride, end, j0);
    for (j, o) in c_row[..end].iter_mut().enumerate().skip(j0) {
        let mut part = if LOAD_C { *o } else { 0.0 };
        for (p, &av) in a_row.iter().enumerate() {
            part += av * b[p * stride + j];
        }
        if LOAD_C {
            *o = part;
        } else {
            *o += part;
        }
    }
}

/// One full register-blocked row (`stride == width`, the single-segment
/// layout of [`mma_row_block_reg`] and [`mma_row_block_fused_acc`]).
#[inline]
fn reg_row<const LOAD_C: bool>(
    a_row: &[f32],
    b: &[f32],
    c_row: &mut [f32],
    width: usize,
    cascade: RegCascade,
) {
    reg_row_span::<LOAD_C>(a_row, b, c_row, width, 0, width, cascade);
}

/// Register-blocked variant of [`mma_row_block`] for prepared plans:
/// `c[rows×width] += a[rows×kk] · b[kk×width]` with each `REG_BLOCK`-wide
/// output chunk loaded once, updated in registers across all `kk` reduction
/// steps (ascending `k`, exactly like [`mma_row_block`]), and stored once.
///
/// Per output element the sequence of additions is identical to
/// [`mma_row_block`] — only the memory traffic changes — so the two are
/// bit-identical; the prepared plans use this one because their packed panels
/// make the whole reduction of a tile available in one call.
///
/// # Panics
///
/// Panics if the slices do not match the stated dimensions
/// (`a.len() == rows*kk`, `b.len() == kk*width`, `c.len() == rows*width`).
pub fn mma_row_block_reg(
    a: &[f32],
    rows: usize,
    kk: usize,
    b: &[f32],
    c: &mut [f32],
    width: usize,
) {
    mma_row_block_reg_cascade(a, rows, kk, b, c, width, RegCascade::FULL);
}

/// [`mma_row_block_reg`] with an explicit per-bucket [`RegCascade`] (selected
/// by the kernel plans alongside their launch configuration); bit-identical
/// for every cascade.
///
/// # Panics
///
/// Panics if the slices do not match the stated dimensions.
pub fn mma_row_block_reg_cascade(
    a: &[f32],
    rows: usize,
    kk: usize,
    b: &[f32],
    c: &mut [f32],
    width: usize,
    cascade: RegCascade,
) {
    assert_eq!(a.len(), rows * kk, "A fragment must be rows*kk elements");
    assert_eq!(b.len(), kk * width, "B block must be kk*width elements");
    assert_eq!(c.len(), rows * width, "C block must be rows*width elements");
    if rows == 0 || kk == 0 || width == 0 {
        return;
    }
    for (a_row, c_row) in a.chunks_exact(kk).zip(c.chunks_exact_mut(width)) {
        reg_row::<true>(a_row, b, c_row, width, cascade);
    }
}

/// Fused stitched-step MMA for prepared plans: computes one step's partial
/// product in register blocks — starting from `+0.0`, reducing ascending `k` —
/// and adds each finished element into the group accumulator:
/// `acc[rows×width] += (a[rows×kk] · b[kk×width])`.
///
/// This is bit-identical to the cold stitched kernels' three-sweep sequence
/// (zero a partial tile, [`mma_row_block`] into it, add the tile into the
/// accumulator): per output element the partial still accumulates its `kk`
/// products in ascending order from `+0.0` and is then added to the
/// accumulator exactly once. The fusion removes two full sweeps of memory
/// traffic per step, which the prepared plans can exploit because their packed
/// panels deliver the whole step in one call.
///
/// # Panics
///
/// Panics if the slices do not match the stated dimensions
/// (`a.len() == rows*kk`, `b.len() == kk*width`, `acc.len() == rows*width`).
pub fn mma_row_block_fused_acc(
    a: &[f32],
    rows: usize,
    kk: usize,
    b: &[f32],
    acc: &mut [f32],
    width: usize,
) {
    mma_row_block_fused_acc_cascade(a, rows, kk, b, acc, width, RegCascade::FULL);
}

/// [`mma_row_block_fused_acc`] with an explicit per-bucket [`RegCascade`];
/// bit-identical for every cascade.
///
/// # Panics
///
/// Panics if the slices do not match the stated dimensions.
pub fn mma_row_block_fused_acc_cascade(
    a: &[f32],
    rows: usize,
    kk: usize,
    b: &[f32],
    acc: &mut [f32],
    width: usize,
    cascade: RegCascade,
) {
    assert_eq!(a.len(), rows * kk, "A fragment must be rows*kk elements");
    assert_eq!(b.len(), kk * width, "B block must be kk*width elements");
    assert_eq!(
        acc.len(),
        rows * width,
        "acc block must be rows*width elements"
    );
    if rows == 0 || kk == 0 || width == 0 {
        return;
    }
    for (a_row, acc_row) in a.chunks_exact(kk).zip(acc.chunks_exact_mut(width)) {
        reg_row::<false>(a_row, b, acc_row, width, cascade);
    }
}

/// Gather chunk sweep for [`mma_row_block_gather_fused_acc`]: like
/// [`reg_row_chunks`] with `LOAD_C = false`, but the `kk` operand rows of `b`
/// are addressed by index (`b_rows[p]`) instead of being consecutive. Covers
/// columns `j0 .. end` of a row stored with memory stride `stride`.
#[inline]
fn reg_row_gather_chunks<const BLK: usize>(
    a_row: &[f32],
    b: &[f32],
    b_rows: &[u32],
    acc_row: &mut [f32],
    stride: usize,
    end: usize,
    mut j0: usize,
) -> usize {
    while j0 + BLK <= end {
        let mut part = [0.0f32; BLK];
        for (&av, &col) in a_row.iter().zip(b_rows.iter()) {
            let off = col as usize * stride + j0;
            let bs = &b[off..off + BLK];
            for (o, &bv) in part.iter_mut().zip(bs.iter()) {
                *o += av * bv;
            }
        }
        for (o, &p) in acc_row[j0..j0 + BLK].iter_mut().zip(part.iter()) {
            *o += p;
        }
        j0 += BLK;
    }
    j0
}

/// One gathered register-blocked column span of one row (`reg_row_span` for
/// the gather kernels), dispatched to the active SIMD tier exactly like
/// [`reg_row_span`]; every tier is bit-identical.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the gather kernel + span bounds
fn reg_row_gather_span(
    a_row: &[f32],
    b: &[f32],
    b_rows: &[u32],
    acc_row: &mut [f32],
    stride: usize,
    start: usize,
    end: usize,
    cascade: RegCascade,
) {
    match crate::simd::active_tier() {
        // SAFETY: the public gather kernels assert
        // `b_rows[p] as usize * stride + end <= b.len()` for every step and
        // `end <= acc_row.len()`; the tier is only returned when the CPU
        // supports the feature.
        #[cfg(target_arch = "x86_64")]
        crate::simd::SimdTier::Avx2 => unsafe {
            crate::simd::x86::gather_span_avx2(a_row, b, b_rows, stride, acc_row, start, end)
        },
        // SAFETY: same bounds contract; SSE2 is baseline on x86-64.
        #[cfg(target_arch = "x86_64")]
        crate::simd::SimdTier::Sse2 => unsafe {
            crate::simd::x86::gather_span_sse2(a_row, b, b_rows, stride, acc_row, start, end)
        },
        _ => reg_row_gather_span_scalar(a_row, b, b_rows, acc_row, stride, start, end, cascade),
    }
}

/// The scalar tier of [`reg_row_gather_span`]: chunk cascade plus scalar
/// tail over `start .. end`.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the gather kernel + span bounds
fn reg_row_gather_span_scalar(
    a_row: &[f32],
    b: &[f32],
    b_rows: &[u32],
    acc_row: &mut [f32],
    stride: usize,
    start: usize,
    end: usize,
    cascade: RegCascade,
) {
    let mut j0 = start;
    if cascade.largest >= 64 {
        j0 = reg_row_gather_chunks::<64>(a_row, b, b_rows, acc_row, stride, end, j0);
    }
    if cascade.largest >= 32 {
        j0 = reg_row_gather_chunks::<32>(a_row, b, b_rows, acc_row, stride, end, j0);
    }
    if cascade.largest >= 16 {
        j0 = reg_row_gather_chunks::<16>(a_row, b, b_rows, acc_row, stride, end, j0);
    }
    j0 = reg_row_gather_chunks::<8>(a_row, b, b_rows, acc_row, stride, end, j0);
    for (j, o) in acc_row[..end].iter_mut().enumerate().skip(j0) {
        let mut part = 0.0f32;
        for (&av, &col) in a_row.iter().zip(b_rows.iter()) {
            part += av * b[col as usize * stride + j];
        }
        *o += part;
    }
}

/// Gather variant of [`mma_row_block_fused_acc`] for the prepared stitched
/// plans: the `kk` activation rows are read **in place** from a pre-rounded
/// `width`-column row-major buffer, addressed by `b_rows[p]`, instead of first
/// being copied into a contiguous stitched tile:
/// `acc[rows×width] += a[rows×kk] · B[b_rows[0..kk], :]`.
///
/// Reading `B[b_rows[p]]` directly is value-for-value the same operand
/// sequence as staging those rows into a `kk×width` tile and calling
/// [`mma_row_block_fused_acc`], so the two are bit-identical — this path just
/// skips the per-step stitching copies the cold kernel pays.
///
/// # Panics
///
/// Panics if the slices do not match the stated dimensions
/// (`a.len() == rows*kk`, `b_rows.len() == kk`, `acc.len() == rows*width`) or
/// a row index reaches past `b`.
pub fn mma_row_block_gather_fused_acc(
    a: &[f32],
    rows: usize,
    kk: usize,
    b: &[f32],
    b_rows: &[u32],
    acc: &mut [f32],
    width: usize,
) {
    mma_row_block_gather_fused_acc_cascade(a, rows, kk, b, b_rows, acc, width, RegCascade::FULL);
}

/// [`mma_row_block_gather_fused_acc`] with an explicit per-bucket
/// [`RegCascade`]; bit-identical for every cascade.
///
/// # Panics
///
/// Panics if the slices do not match the stated dimensions or a row index
/// reaches past `b`.
#[allow(clippy::too_many_arguments)] // mirrors the gather kernel + cascade
pub fn mma_row_block_gather_fused_acc_cascade(
    a: &[f32],
    rows: usize,
    kk: usize,
    b: &[f32],
    b_rows: &[u32],
    acc: &mut [f32],
    width: usize,
    cascade: RegCascade,
) {
    assert_eq!(a.len(), rows * kk, "A fragment must be rows*kk elements");
    assert_eq!(b_rows.len(), kk, "one B row index per reduction step");
    assert_eq!(
        acc.len(),
        rows * width,
        "acc block must be rows*width elements"
    );
    if rows == 0 || kk == 0 || width == 0 {
        return;
    }
    for &col in b_rows {
        assert!(
            (col as usize + 1) * width <= b.len(),
            "B row index {col} reaches past the operand"
        );
    }
    for (a_row, acc_row) in a.chunks_exact(kk).zip(acc.chunks_exact_mut(width)) {
        reg_row_gather_span(a_row, b, b_rows, acc_row, width, 0, width, cascade);
    }
}

/// Offset-gather variant of [`mma_row_block_gather_fused_acc_cascade`] for
/// the implicit-GEMM convolution plans: reduction step `p` reads its operand
/// elements **at per-tap element offsets** instead of whole indexed rows —
/// the operand element of step `p`, column `j` is
/// `b[b_base + b_offs[p] + j]`. This is what lets a conv plan walk a padded,
/// pre-rounded input transform in place: `b_base` locates one output block
/// (a batch row of the output image), `b_offs[p]` locates the `(channel,
/// kernel-row, kernel-col)` tap inside it, and consecutive output columns
/// read consecutive transform elements.
///
/// Semantics match the fused kernels: one step's partial product per output
/// element, reduced from `+0.0` in ascending `k`, added into `acc` exactly
/// once. Reading `b` at `b_base + b_offs[p] + j` is value-for-value the same
/// operand sequence as staging those elements into a `kk×width` tile and
/// calling [`mma_row_block_fused_acc_cascade`], so the two are bit-identical.
///
/// # Panics
///
/// Panics if the slices do not match the stated dimensions
/// (`a.len() == rows*kk`, `b_offs.len() == kk`, `acc.len() == rows*width`)
/// or a tap's span `b_base + b_offs[p] .. + width` reaches past `b`.
#[allow(clippy::too_many_arguments)] // mirrors the gather kernel + cascade
pub fn mma_row_block_offset_fused_acc_cascade(
    a: &[f32],
    rows: usize,
    kk: usize,
    b: &[f32],
    b_base: usize,
    b_offs: &[u32],
    acc: &mut [f32],
    width: usize,
    cascade: RegCascade,
) {
    assert_eq!(a.len(), rows * kk, "A fragment must be rows*kk elements");
    assert_eq!(b_offs.len(), kk, "one B element offset per reduction step");
    assert_eq!(
        acc.len(),
        rows * width,
        "acc block must be rows*width elements"
    );
    if rows == 0 || kk == 0 || width == 0 {
        return;
    }
    for &off in b_offs {
        assert!(
            b_base + off as usize + width <= b.len(),
            "B offset {off} (base {b_base}) reaches past the operand"
        );
    }
    for (a_row, acc_row) in a.chunks_exact(kk).zip(acc.chunks_exact_mut(width)) {
        reg_row_offset_span(a_row, b, b_base, b_offs, acc_row, 0, width, cascade);
    }
}

/// Offset chunk sweep for [`mma_row_block_offset_fused_acc_cascade`]: like
/// [`reg_row_gather_chunks`], but step `p`'s operand starts at element
/// `b_base + b_offs[p]` instead of row `b_rows[p]`.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the offset kernel + span bounds
fn reg_row_offset_chunks<const BLK: usize>(
    a_row: &[f32],
    b: &[f32],
    b_base: usize,
    b_offs: &[u32],
    acc_row: &mut [f32],
    end: usize,
    mut j0: usize,
) -> usize {
    while j0 + BLK <= end {
        let mut part = [0.0f32; BLK];
        for (&av, &off) in a_row.iter().zip(b_offs.iter()) {
            let at = b_base + off as usize + j0;
            let bs = &b[at..at + BLK];
            for (o, &bv) in part.iter_mut().zip(bs.iter()) {
                *o += av * bv;
            }
        }
        for (o, &p) in acc_row[j0..j0 + BLK].iter_mut().zip(part.iter()) {
            *o += p;
        }
        j0 += BLK;
    }
    j0
}

/// One offset register-blocked column span of one row, dispatched to the
/// active SIMD tier exactly like [`reg_row_gather_span`]; every tier is
/// bit-identical.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the offset kernel + span bounds
fn reg_row_offset_span(
    a_row: &[f32],
    b: &[f32],
    b_base: usize,
    b_offs: &[u32],
    acc_row: &mut [f32],
    start: usize,
    end: usize,
    cascade: RegCascade,
) {
    match crate::simd::active_tier() {
        // SAFETY: the public offset kernel asserts
        // `b_base + b_offs[p] as usize + end <= b.len()` for every step and
        // `end <= acc_row.len()`; the tier is only returned when the CPU
        // supports the feature.
        #[cfg(target_arch = "x86_64")]
        crate::simd::SimdTier::Avx2 => unsafe {
            crate::simd::x86::offset_span_avx2(a_row, b, b_base, b_offs, acc_row, start, end)
        },
        // SAFETY: same bounds contract; SSE2 is baseline on x86-64.
        #[cfg(target_arch = "x86_64")]
        crate::simd::SimdTier::Sse2 => unsafe {
            crate::simd::x86::offset_span_sse2(a_row, b, b_base, b_offs, acc_row, start, end)
        },
        _ => reg_row_offset_span_scalar(a_row, b, b_base, b_offs, acc_row, start, end, cascade),
    }
}

/// The scalar tier of [`reg_row_offset_span`]: chunk cascade plus scalar
/// tail over `start .. end`.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the offset kernel + span bounds
fn reg_row_offset_span_scalar(
    a_row: &[f32],
    b: &[f32],
    b_base: usize,
    b_offs: &[u32],
    acc_row: &mut [f32],
    start: usize,
    end: usize,
    cascade: RegCascade,
) {
    let mut j0 = start;
    if cascade.largest >= 64 {
        j0 = reg_row_offset_chunks::<64>(a_row, b, b_base, b_offs, acc_row, end, j0);
    }
    if cascade.largest >= 32 {
        j0 = reg_row_offset_chunks::<32>(a_row, b, b_base, b_offs, acc_row, end, j0);
    }
    if cascade.largest >= 16 {
        j0 = reg_row_offset_chunks::<16>(a_row, b, b_base, b_offs, acc_row, end, j0);
    }
    j0 = reg_row_offset_chunks::<8>(a_row, b, b_base, b_offs, acc_row, end, j0);
    for (j, o) in acc_row[..end].iter_mut().enumerate().skip(j0) {
        let mut part = 0.0f32;
        for (&av, &off) in a_row.iter().zip(b_offs.iter()) {
            part += av * b[b_base + off as usize + j];
        }
        *o += part;
    }
}

/// One output-column segment of a fused multi-segment sweep: columns
/// `start .. start + width` of operand/accumulator rows whose memory stride
/// is the full multi-segment width, swept with this segment's register-block
/// cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSpan {
    /// First column of the segment inside the full-width rows.
    pub start: usize,
    /// Number of columns the segment covers.
    pub width: usize,
    /// Register-block cascade this segment's columns are swept with (only the
    /// column-to-chunk grouping changes with the cascade, never the result).
    pub cascade: RegCascade,
}

impl SegmentSpan {
    /// First column past the segment.
    fn end(&self) -> usize {
        self.start + self.width
    }
}

/// Validates the shared slice/segment contract of the multi-segment kernels.
fn check_segments(segments: &[SegmentSpan], stride: usize) {
    for seg in segments {
        assert!(
            seg.end() <= stride,
            "segment {}..{} exceeds the row stride {stride}",
            seg.start,
            seg.end()
        );
    }
}

/// Multi-segment variant of [`mma_row_block_reg_cascade`]: one staged
/// `rows × kk` A-fragment applied to **several** output-column segments of a
/// full-width operand in a single call —
/// `c[r, s.start..s.end] += a[r, :] · b[:, s.start..s.end]` for every
/// segment `s`. `b` (`kk × stride`) and `c` (`rows × stride`) are full-width
/// row-major buffers. The A-fragment is read from memory once per call and
/// stays cache-hot across every segment's sweep, which is what makes a fused
/// panel sweep read each packed panel once instead of once per segment.
///
/// The segment loop is **outermost** (segment-major): each segment's
/// `kk × width` slice of `b` and `rows × width` slice of `c` are swept to
/// completion before the next segment, so the per-segment working set is as
/// small as the single-segment kernels' — a row-major loop over a very wide
/// fused operand would re-stream every segment's B rows once per output row
/// instead of keeping them L1-resident.
///
/// Per output element (every element belongs to exactly one segment) the `kk`
/// products still accumulate in ascending order through one `f32`, so the
/// call is **bit-identical** to invoking [`mma_row_block_reg_cascade`] once
/// per segment on that segment's extracted columns, in either loop order.
///
/// # Panics
///
/// Panics if the slices do not match the stated dimensions
/// (`a.len() == rows*kk`, `b.len() == kk*stride`, `c.len() == rows*stride`)
/// or a segment reaches past `stride`.
pub fn mma_row_block_reg_segments(
    a: &[f32],
    rows: usize,
    kk: usize,
    b: &[f32],
    c: &mut [f32],
    stride: usize,
    segments: &[SegmentSpan],
) {
    assert_eq!(a.len(), rows * kk, "A fragment must be rows*kk elements");
    assert_eq!(b.len(), kk * stride, "B block must be kk*stride elements");
    assert_eq!(
        c.len(),
        rows * stride,
        "C block must be rows*stride elements"
    );
    check_segments(segments, stride);
    if rows == 0 || kk == 0 || stride == 0 {
        return;
    }
    for seg in segments {
        for (a_row, c_row) in a.chunks_exact(kk).zip(c.chunks_exact_mut(stride)) {
            reg_row_span::<true>(a_row, b, c_row, stride, seg.start, seg.end(), seg.cascade);
        }
    }
}

/// Multi-segment variant of [`mma_row_block_fused_acc_cascade`]: one step's
/// partial product computed per segment in register blocks (from `+0.0`,
/// ascending `k`) and added into the full-width group accumulator, for every
/// segment of the sweep in one call. Bit-identical to the per-segment
/// invocation for the same reason as [`mma_row_block_reg_segments`].
///
/// # Panics
///
/// Panics if the slices do not match the stated dimensions or a segment
/// reaches past `stride`.
pub fn mma_row_block_fused_acc_segments(
    a: &[f32],
    rows: usize,
    kk: usize,
    b: &[f32],
    acc: &mut [f32],
    stride: usize,
    segments: &[SegmentSpan],
) {
    assert_eq!(a.len(), rows * kk, "A fragment must be rows*kk elements");
    assert_eq!(b.len(), kk * stride, "B block must be kk*stride elements");
    assert_eq!(
        acc.len(),
        rows * stride,
        "acc block must be rows*stride elements"
    );
    check_segments(segments, stride);
    if rows == 0 || kk == 0 || stride == 0 {
        return;
    }
    for seg in segments {
        for (a_row, acc_row) in a.chunks_exact(kk).zip(acc.chunks_exact_mut(stride)) {
            reg_row_span::<false>(a_row, b, acc_row, stride, seg.start, seg.end(), seg.cascade);
        }
    }
}

/// Multi-segment variant of [`mma_row_block_gather_fused_acc_cascade`]: the
/// `kk` activation rows are read in place from a full-width pre-rounded
/// buffer (stride `stride`, rows addressed by `b_rows[p]`), and one panel's
/// partial product is accumulated into every output segment in a single
/// sweep. Bit-identical to the per-segment invocation for the same reason as
/// [`mma_row_block_reg_segments`].
///
/// # Panics
///
/// Panics if the slices do not match the stated dimensions
/// (`a.len() == rows*kk`, `b_rows.len() == kk`,
/// `acc.len() == rows*stride`), a segment reaches past `stride`, or a row
/// index reaches past `b`.
#[allow(clippy::too_many_arguments)] // mirrors the single-segment gather kernel
pub fn mma_row_block_gather_fused_acc_segments(
    a: &[f32],
    rows: usize,
    kk: usize,
    b: &[f32],
    b_rows: &[u32],
    acc: &mut [f32],
    stride: usize,
    segments: &[SegmentSpan],
) {
    assert_eq!(a.len(), rows * kk, "A fragment must be rows*kk elements");
    assert_eq!(b_rows.len(), kk, "one B row index per reduction step");
    assert_eq!(
        acc.len(),
        rows * stride,
        "acc block must be rows*stride elements"
    );
    check_segments(segments, stride);
    if rows == 0 || kk == 0 || stride == 0 {
        return;
    }
    for &col in b_rows {
        assert!(
            (col as usize + 1) * stride <= b.len(),
            "B row index {col} reaches past the operand"
        );
    }
    for seg in segments {
        for (a_row, acc_row) in a.chunks_exact(kk).zip(acc.chunks_exact_mut(stride)) {
            reg_row_gather_span(
                a_row,
                b,
                b_rows,
                acc_row,
                stride,
                seg.start,
                seg.end(),
                seg.cascade,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_dimensions() {
        assert_eq!(
            (
                MmaShape::M16N8K16.m(),
                MmaShape::M16N8K16.n(),
                MmaShape::M16N8K16.k()
            ),
            (16, 8, 16)
        );
        assert_eq!(MmaShape::M16N8K8.k(), 8);
        assert_eq!(MmaShape::M16N16K16.n(), 16);
    }

    #[test]
    fn macs_and_flops() {
        assert_eq!(MmaShape::M16N8K16.macs(), 16 * 8 * 16);
        assert_eq!(MmaShape::M16N8K16.flops(), 2 * 16 * 8 * 16);
    }

    #[test]
    fn instruction_count_rounds_up() {
        let s = MmaShape::M16N8K16;
        assert_eq!(s.instructions_for(16, 8, 16), 1);
        assert_eq!(s.instructions_for(17, 8, 16), 2);
        assert_eq!(s.instructions_for(32, 16, 32), 2 * 2 * 2);
        // The paper's point: a 1-wide reduction still pays a full instruction.
        assert_eq!(s.instructions_for(16, 8, 1), 1);
    }

    #[test]
    fn utilization_is_one_for_aligned_tiles_and_less_otherwise() {
        let s = MmaShape::M16N8K16;
        assert!((s.utilization_for(64, 64, 64) - 1.0).abs() < 1e-12);
        assert!(s.utilization_for(16, 8, 1) < 0.1);
        assert_eq!(s.utilization_for(0, 8, 16), 0.0);
    }

    #[test]
    fn f16_roundtrip_preserves_representable_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, -0.25, 65504.0] {
            assert_eq!(
                round_to_f16(v),
                v,
                "value {v} should be exactly representable"
            );
        }
    }

    #[test]
    fn f16_rounding_introduces_bounded_error() {
        let v = 0.1f32;
        let r = round_to_f16(v);
        assert!((r - v).abs() < 1e-3);
        // Large values saturate instead of becoming infinite.
        assert!(round_to_f16(1e9).is_finite());
        assert!(round_to_f16(1e9) <= 65504.0);
    }

    #[test]
    fn warp_mma_matches_reference() {
        let shape = MmaShape::M16N8K16;
        let (m, n, k) = (shape.m(), shape.n(), shape.k());
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 * 0.25).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.5 - 1.0).collect();
        let mut c = vec![0.25f32; m * n];
        let mut expected = c.clone();
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    expected[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        warp_mma(shape, &a, &b, &mut c, false);
        for (x, y) in c.iter().zip(expected.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "A fragment")]
    fn warp_mma_rejects_wrong_fragment_size() {
        let mut c = vec![0.0f32; 16 * 8];
        warp_mma(MmaShape::M16N8K16, &[0.0; 3], &[0.0; 16 * 8], &mut c, false);
    }

    #[test]
    fn warp_mma_with_f16_rounding_stays_close() {
        let shape = MmaShape::M16N8K16;
        let (m, n, k) = (shape.m(), shape.n(), shape.k());
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37) % 11) as f32 * 0.01).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 13) % 17) as f32 * 0.02).collect();
        let mut exact = vec![0.0f32; m * n];
        let mut rounded = vec![0.0f32; m * n];
        warp_mma(shape, &a, &b, &mut exact, false);
        warp_mma(shape, &a, &b, &mut rounded, true);
        for (x, y) in exact.iter().zip(rounded.iter()) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    /// The historical implementation re-rounded both operands inside the
    /// `m·n·k` inner loop. The hoisted pre-rounding must be bit-identical.
    fn warp_mma_per_element_rounding(shape: MmaShape, a: &[f32], b: &[f32], c: &mut [f32]) {
        let (m, n, k) = (shape.m(), shape.n(), shape.k());
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for p in 0..k {
                    let av = round_to_f16(a[i * k + p]);
                    let bv = round_to_f16(b[p * n + j]);
                    acc += av * bv;
                }
                c[i * n + j] = acc;
            }
        }
    }

    #[test]
    fn hoisted_rounding_is_bit_identical_to_per_element_rounding() {
        for shape in [MmaShape::M16N8K16, MmaShape::M16N8K8, MmaShape::M16N16K16] {
            let (m, n, k) = (shape.m(), shape.n(), shape.k());
            // Values chosen to exercise rounding: irrational-ish magnitudes,
            // negatives, exact zeros, subnormal-range and saturating entries.
            let a: Vec<f32> = (0..m * k)
                .map(|i| match i % 5 {
                    0 => 0.0,
                    1 => (i as f32 * 0.37).sin() * 3.3,
                    2 => -(i as f32) * 1e-7,
                    3 => i as f32 * 97.003,
                    _ => 1.0 / (i as f32 + 0.7),
                })
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|i| ((i * 31 + 7) % 23) as f32 * 0.0421 - 0.5)
                .collect();
            let c_init: Vec<f32> = (0..m * n).map(|i| (i % 9) as f32 * 0.125 - 0.5).collect();

            let mut hoisted = c_init.clone();
            warp_mma(shape, &a, &b, &mut hoisted, true);
            let mut per_element = c_init.clone();
            warp_mma_per_element_rounding(shape, &a, &b, &mut per_element);
            for (x, y) in hoisted.iter().zip(per_element.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{shape:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn prerounded_matches_warp_mma_on_rounded_operands() {
        let shape = MmaShape::M16N8K8;
        let (m, n, k) = (shape.m(), shape.n(), shape.k());
        let a: Vec<f32> = (0..m * k).map(|i| round_to_f16((i as f32).cos())).collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| round_to_f16(0.01 * i as f32 - 0.3))
            .collect();
        let mut via_flag = vec![0.0f32; m * n];
        warp_mma(shape, &a, &b, &mut via_flag, true);
        let mut via_prerounded = vec![0.0f32; m * n];
        warp_mma_prerounded(shape, &a, &b, &mut via_prerounded);
        assert_eq!(
            via_flag.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            via_prerounded
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn row_block_matches_fragmented_warp_mma() {
        // One 16-row tile times a 40-wide B, reduced over 16: the row-block fast
        // path must equal zero-padded warp_mma fragments stitched over j0.
        let shape = MmaShape::M16N8K16;
        let (m, k) = (shape.m(), shape.k());
        let n = 40;
        let a: Vec<f32> = (0..m * k)
            .map(|i| round_to_f16((i as f32 * 0.11).sin()))
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| round_to_f16((i as f32 * 0.07).cos()))
            .collect();

        let mut fast = vec![0.0f32; m * n];
        mma_row_block(&a, m, k, &b, &mut fast, n);

        let fn_ = shape.n();
        let mut reference = vec![0.0f32; m * n];
        let mut b_frag = vec![0.0f32; k * fn_];
        let mut c_frag = vec![0.0f32; m * fn_];
        for j0 in (0..n).step_by(fn_) {
            c_frag.iter_mut().for_each(|x| *x = 0.0);
            for p in 0..k {
                for j in 0..fn_ {
                    b_frag[p * fn_ + j] = if j0 + j < n { b[p * n + j0 + j] } else { 0.0 };
                }
            }
            warp_mma_prerounded(shape, &a, &b_frag, &mut c_frag);
            for i in 0..m {
                for j in 0..fn_ {
                    if j0 + j < n {
                        reference[i * n + j0 + j] = c_frag[i * fn_ + j];
                    }
                }
            }
        }
        assert_eq!(
            fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Pseudo-random but deterministic operand data covering widths around the
    /// register block (tails included).
    fn reg_case(rows: usize, kk: usize, width: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..rows * kk)
            .map(|i| round_to_f16((i as f32 * 0.31).sin()))
            .collect();
        let b: Vec<f32> = (0..kk * width)
            .map(|i| round_to_f16((i as f32 * 0.07).cos() - 0.2))
            .collect();
        let c: Vec<f32> = (0..rows * width)
            .map(|i| (i % 11) as f32 * 0.125 - 0.5)
            .collect();
        (a, b, c)
    }

    #[test]
    fn row_block_reg_is_bit_identical_to_row_block() {
        for (rows, kk, width) in [(5, 4, 19), (16, 16, 32), (3, 7, 77), (1, 1, 1), (2, 3, 31)] {
            let (a, b, c_init) = reg_case(rows, kk, width);
            let mut plain = c_init.clone();
            mma_row_block(&a, rows, kk, &b, &mut plain, width);
            let mut reg = c_init.clone();
            mma_row_block_reg(&a, rows, kk, &b, &mut reg, width);
            assert_eq!(
                plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reg.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{rows}x{kk}x{width}"
            );
        }
    }

    #[test]
    fn row_block_fused_acc_is_bit_identical_to_zero_mma_add() {
        for (rows, kk, width) in [(5, 4, 19), (16, 16, 32), (3, 7, 77), (1, 1, 1), (8, 2, 33)] {
            let (a, b, acc_init) = reg_case(rows, kk, width);
            // Cold sequence: zero a partial, mma into it, add into acc.
            let mut partial = vec![0.0f32; rows * width];
            let mut cold = acc_init.clone();
            mma_row_block(&a, rows, kk, &b, &mut partial, width);
            for (o, p) in cold.iter_mut().zip(partial.iter()) {
                *o += p;
            }
            let mut fused = acc_init.clone();
            mma_row_block_fused_acc(&a, rows, kk, &b, &mut fused, width);
            assert_eq!(
                cold.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{rows}x{kk}x{width}"
            );
        }
    }

    #[test]
    fn gather_fused_acc_is_bit_identical_to_staged_fused_acc() {
        for (rows, kk, width, b_height) in [(5, 4, 19, 11), (16, 16, 32, 40), (3, 7, 77, 9)] {
            let (a, _, acc_init) = reg_case(rows, kk, width);
            let b: Vec<f32> = (0..b_height * width)
                .map(|i| round_to_f16((i as f32 * 0.13).sin()))
                .collect();
            let b_rows: Vec<u32> = (0..kk).map(|p| ((p * 5 + 2) % b_height) as u32).collect();
            // Staged reference: copy the referenced rows into a tile first.
            let mut b_tile = vec![0.0f32; kk * width];
            for (j, col) in b_rows.iter().enumerate() {
                let off = *col as usize * width;
                b_tile[j * width..(j + 1) * width].copy_from_slice(&b[off..off + width]);
            }
            let mut staged = acc_init.clone();
            mma_row_block_fused_acc(&a, rows, kk, &b_tile, &mut staged, width);
            let mut gathered = acc_init.clone();
            mma_row_block_gather_fused_acc(&a, rows, kk, &b, &b_rows, &mut gathered, width);
            assert_eq!(
                staged.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                gathered.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{rows}x{kk}x{width}"
            );
        }
    }

    #[test]
    fn every_cascade_is_bit_identical() {
        for (rows, kk, width, b_height) in [
            (5, 4, 19, 11),
            (16, 16, 70, 80),
            (3, 7, 77, 9),
            (2, 3, 9, 5),
        ] {
            let (a, b, c_init) = reg_case(rows, kk, width);
            let mut full = c_init.clone();
            mma_row_block_reg(&a, rows, kk, &b, &mut full, width);
            let gather_b: Vec<f32> = (0..b_height * width)
                .map(|i| round_to_f16((i as f32 * 0.13).sin()))
                .collect();
            let b_rows: Vec<u32> = (0..kk).map(|p| ((p * 5 + 2) % b_height) as u32).collect();
            let mut gather_full = c_init.clone();
            mma_row_block_gather_fused_acc(
                &a,
                rows,
                kk,
                &gather_b,
                &b_rows,
                &mut gather_full,
                width,
            );
            let mut fused_full = c_init.clone();
            mma_row_block_fused_acc(&a, rows, kk, &b, &mut fused_full, width);
            for largest in [8usize, 16, 32, 64] {
                let cascade = RegCascade::for_width(largest);
                assert_eq!(cascade.largest_chunk(), largest);
                let mut c = c_init.clone();
                mma_row_block_reg_cascade(&a, rows, kk, &b, &mut c, width, cascade);
                assert_eq!(
                    c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    full.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "reg cascade {largest} on {rows}x{kk}x{width}"
                );
                let mut c = c_init.clone();
                mma_row_block_fused_acc_cascade(&a, rows, kk, &b, &mut c, width, cascade);
                assert_eq!(
                    c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    fused_full.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "fused cascade {largest} on {rows}x{kk}x{width}"
                );
                let mut c = c_init.clone();
                mma_row_block_gather_fused_acc_cascade(
                    &a, rows, kk, &gather_b, &b_rows, &mut c, width, cascade,
                );
                assert_eq!(
                    c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    gather_full.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "gather cascade {largest} on {rows}x{kk}x{width}"
                );
            }
        }
    }

    /// Splits `total` into spans at the given cut points, each with the
    /// cascade its own width selects (what the kernel plans do per bucket).
    fn spans(total: usize, cuts: &[usize]) -> Vec<SegmentSpan> {
        let mut edges = vec![0];
        edges.extend_from_slice(cuts);
        edges.push(total);
        edges
            .windows(2)
            .map(|w| SegmentSpan {
                start: w[0],
                width: w[1] - w[0],
                cascade: RegCascade::for_width(w[1] - w[0]),
            })
            .collect()
    }

    /// Extracts segment columns `start..start+width` of a `rows × stride`
    /// row-major buffer into a dense `rows × width` buffer.
    fn extract(src: &[f32], rows: usize, stride: usize, start: usize, width: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(rows * width);
        for r in 0..rows {
            out.extend_from_slice(&src[r * stride + start..r * stride + start + width]);
        }
        out
    }

    /// Writes a dense `rows × width` buffer back into segment columns of a
    /// `rows × stride` row-major buffer.
    fn scatter(
        dst: &mut [f32],
        seg: &[f32],
        rows: usize,
        stride: usize,
        start: usize,
        width: usize,
    ) {
        for r in 0..rows {
            dst[r * stride + start..r * stride + start + width]
                .copy_from_slice(&seg[r * width..(r + 1) * width]);
        }
    }

    #[test]
    fn multi_segment_kernels_are_bit_identical_to_per_segment_sweeps() {
        for (rows, kk, total, cuts) in [
            (5usize, 4usize, 45usize, &[8usize, 24][..]),
            (16, 16, 70, &[64][..]),
            (3, 7, 9, &[1, 2, 8][..]),
            (2, 3, 33, &[][..]), // a single segment covering everything
        ] {
            let (a, b, c_init) = reg_case(rows, kk, total);
            let segs = spans(total, cuts);

            // Direct-accumulation variant vs per-segment extract/sweep/scatter.
            let mut fused = c_init.clone();
            mma_row_block_reg_segments(&a, rows, kk, &b, &mut fused, total, &segs);
            let mut reference = c_init.clone();
            for s in &segs {
                let b_seg = extract(&b, kk, total, s.start, s.width);
                let mut c_seg = extract(&reference, rows, total, s.start, s.width);
                mma_row_block_reg_cascade(&a, rows, kk, &b_seg, &mut c_seg, s.width, s.cascade);
                scatter(&mut reference, &c_seg, rows, total, s.start, s.width);
            }
            assert_eq!(
                fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "reg segments {rows}x{kk}x{total} cuts {cuts:?}"
            );

            // Fused-partial variant.
            let mut fused = c_init.clone();
            mma_row_block_fused_acc_segments(&a, rows, kk, &b, &mut fused, total, &segs);
            let mut reference = c_init.clone();
            for s in &segs {
                let b_seg = extract(&b, kk, total, s.start, s.width);
                let mut c_seg = extract(&reference, rows, total, s.start, s.width);
                mma_row_block_fused_acc_cascade(
                    &a, rows, kk, &b_seg, &mut c_seg, s.width, s.cascade,
                );
                scatter(&mut reference, &c_seg, rows, total, s.start, s.width);
            }
            assert_eq!(
                fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "fused segments {rows}x{kk}x{total} cuts {cuts:?}"
            );

            // Gather variant (indexed activation rows).
            let b_height = kk * 3 + 1;
            let gather_b: Vec<f32> = (0..b_height * total)
                .map(|i| round_to_f16((i as f32 * 0.13).sin()))
                .collect();
            let b_rows: Vec<u32> = (0..kk).map(|p| ((p * 5 + 2) % b_height) as u32).collect();
            let mut fused = c_init.clone();
            mma_row_block_gather_fused_acc_segments(
                &a, rows, kk, &gather_b, &b_rows, &mut fused, total, &segs,
            );
            let mut reference = c_init.clone();
            for s in &segs {
                let b_seg = extract(&gather_b, b_height, total, s.start, s.width);
                let mut c_seg = extract(&reference, rows, total, s.start, s.width);
                mma_row_block_gather_fused_acc_cascade(
                    &a, rows, kk, &b_seg, &b_rows, &mut c_seg, s.width, s.cascade,
                );
                scatter(&mut reference, &c_seg, rows, total, s.start, s.width);
            }
            assert_eq!(
                fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "gather segments {rows}x{kk}x{total} cuts {cuts:?}"
            );
        }
    }

    #[test]
    fn multi_segment_kernels_handle_empty_segment_lists_and_degenerate_dims() {
        let mut c = vec![1.0f32; 6];
        mma_row_block_reg_segments(&[0.0; 6], 3, 2, &[0.0; 4], &mut c, 2, &[]);
        mma_row_block_fused_acc_segments(&[], 3, 0, &[], &mut c, 2, &[]);
        assert_eq!(c, vec![1.0f32; 6]);
    }

    #[test]
    #[should_panic(expected = "exceeds the row stride")]
    fn multi_segment_kernels_reject_out_of_range_segments() {
        let mut c = vec![0.0f32; 4];
        let seg = SegmentSpan {
            start: 1,
            width: 2,
            cascade: RegCascade::FULL,
        };
        mma_row_block_reg_segments(&[0.0; 2], 2, 1, &[0.0; 2], &mut c, 2, &[seg]);
    }

    #[test]
    fn cascade_selection_matches_width_classes() {
        assert_eq!(RegCascade::for_width(1).largest_chunk(), 8);
        assert_eq!(RegCascade::for_width(8).largest_chunk(), 8);
        assert_eq!(RegCascade::for_width(15).largest_chunk(), 8);
        assert_eq!(RegCascade::for_width(16).largest_chunk(), 16);
        assert_eq!(RegCascade::for_width(32).largest_chunk(), 32);
        assert_eq!(RegCascade::for_width(63).largest_chunk(), 32);
        assert_eq!(RegCascade::for_width(64).largest_chunk(), 64);
        assert_eq!(RegCascade::for_width(4096).largest_chunk(), 64);
        assert_eq!(RegCascade::default(), RegCascade::FULL);
    }

    #[test]
    fn reg_kernels_handle_degenerate_dimensions() {
        let mut c = vec![1.0f32; 6];
        mma_row_block_reg(&[], 3, 0, &[], &mut c, 2);
        mma_row_block_fused_acc(&[], 3, 0, &[], &mut c, 2);
        assert_eq!(c, vec![1.0f32; 6]);
        let mut empty: Vec<f32> = vec![];
        mma_row_block_reg(&[0.0; 4], 2, 2, &[], &mut empty, 0);
        mma_row_block_fused_acc(&[0.0; 4], 2, 2, &[], &mut empty, 0);
    }

    #[test]
    fn offset_fused_acc_is_bit_identical_to_staged_fused_acc() {
        for (rows, kk, width, slab) in [(5, 4, 19, 512), (16, 16, 32, 1024), (3, 7, 77, 700)] {
            let (a, _, acc_init) = reg_case(rows, kk, width);
            let b: Vec<f32> = (0..slab)
                .map(|i| round_to_f16((i as f32 * 0.13).sin()))
                .collect();
            let b_base = 37usize;
            let b_offs: Vec<u32> = (0..kk)
                .map(|p| ((p * 53 + 11) % (slab - b_base - width)) as u32)
                .collect();
            // Staged reference: copy each tap's span into a contiguous tile.
            let mut b_tile = vec![0.0f32; kk * width];
            for (p, off) in b_offs.iter().enumerate() {
                let at = b_base + *off as usize;
                b_tile[p * width..(p + 1) * width].copy_from_slice(&b[at..at + width]);
            }
            let mut staged = acc_init.clone();
            mma_row_block_fused_acc(&a, rows, kk, &b_tile, &mut staged, width);
            let mut offset = acc_init.clone();
            mma_row_block_offset_fused_acc_cascade(
                &a,
                rows,
                kk,
                &b,
                b_base,
                &b_offs,
                &mut offset,
                width,
                RegCascade::for_width(width),
            );
            assert_eq!(
                staged.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                offset.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{rows}x{kk}x{width}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "reaches past the operand")]
    fn offset_kernel_rejects_out_of_range_offsets() {
        let a = vec![1.0f32; 2 * 2];
        let b = vec![0.5f32; 16];
        let mut acc = vec![0.0f32; 2 * 8];
        mma_row_block_offset_fused_acc_cascade(
            &a,
            2,
            2,
            &b,
            4,
            &[0, 8], // 4 + 8 + 8 > 16
            &mut acc,
            8,
            RegCascade::for_width(8),
        );
    }

    #[test]
    #[should_panic(expected = "reaches past the operand")]
    fn gather_kernel_rejects_out_of_range_row_indices() {
        let a = vec![1.0f32; 2 * 2];
        let b = vec![0.5f32; 16];
        let mut acc = vec![0.0f32; 2 * 8];
        mma_row_block_gather_fused_acc(&a, 2, 2, &b, &[0, 2], &mut acc, 8);
    }

    /// Sweeps every runtime-dispatchable SIMD tier over every register-blocked
    /// kernel family and asserts bit-identity with the forced-scalar tier —
    /// the contract that makes the runtime dispatch (and `SHFL_SIMD`
    /// overrides) invisible to every consumer.
    #[test]
    fn simd_tiers_are_bit_identical_across_all_kernels() {
        use crate::simd::{self, SimdTier};

        // Shapes chosen to hit every chunk width (256-bit, 128-bit, scalar
        // tail) including narrow conv-like widths (7) and wide buckets.
        let shapes = [(5, 4, 19), (16, 16, 130), (3, 7, 77), (4, 16, 7), (2, 3, 4)];
        let run_all = |tier: Option<SimdTier>| -> Vec<Vec<u32>> {
            simd::force_tier(tier);
            let mut outs = Vec::new();
            for &(rows, kk, width) in &shapes {
                let (a, b, c_init) = reg_case(rows, kk, width);
                let mut reg = c_init.clone();
                mma_row_block_reg(&a, rows, kk, &b, &mut reg, width);
                let mut fused = c_init.clone();
                mma_row_block_fused_acc(&a, rows, kk, &b, &mut fused, width);
                let slab = kk * width + 64;
                let gb: Vec<f32> = (0..slab)
                    .map(|i| round_to_f16((i as f32 * 0.13).sin()))
                    .collect();
                let b_rows: Vec<u32> = (0..kk).map(|p| ((p * 3 + 1) % kk) as u32).collect();
                let mut gather = c_init.clone();
                mma_row_block_gather_fused_acc(
                    &a,
                    rows,
                    kk,
                    &gb[..kk * width],
                    &b_rows,
                    &mut gather,
                    width,
                );
                let b_offs: Vec<u32> = (0..kk).map(|p| ((p * 29 + 3) % 64) as u32).collect();
                let mut offset = c_init.clone();
                mma_row_block_offset_fused_acc_cascade(
                    &a,
                    rows,
                    kk,
                    &gb,
                    0,
                    &b_offs,
                    &mut offset,
                    width,
                    RegCascade::for_width(width),
                );
                let segs = spans(width, &[width / 3, 2 * width / 3]);
                let mut seg_acc = c_init.clone();
                mma_row_block_fused_acc_segments(&a, rows, kk, &b, &mut seg_acc, width, &segs);
                for out in [reg, fused, gather, offset, seg_acc] {
                    outs.push(out.iter().map(|v| v.to_bits()).collect());
                }
            }
            outs
        };

        let scalar = run_all(Some(SimdTier::Scalar));
        for tier in simd::available_tiers() {
            let tiered = run_all(Some(tier));
            assert_eq!(scalar, tiered, "tier {} diverged from scalar", tier.label());
        }
        simd::force_tier(None);
    }

    #[test]
    fn row_block_handles_degenerate_dimensions() {
        let mut c = vec![1.0f32; 0];
        mma_row_block(&[], 0, 4, &[0.0; 8], &mut c, 2);
        let mut c = vec![1.0f32; 6];
        mma_row_block(&[], 3, 0, &[], &mut c, 2);
        assert_eq!(c, vec![1.0f32; 6]);
    }
}
