//! GPU architecture descriptions and presets for the three GPUs the paper evaluates.
//!
//! The numbers come from the public datasheets / whitepapers referenced by the paper
//! (NVIDIA V100, T4 and A100). Peak throughputs are half-precision (fp16) with fp32
//! accumulation, which is the precision the paper's kernels use.

use crate::mma::MmaShape;
use std::fmt;

/// The GPU generation a preset belongs to. Determines which sparse features exist in
/// the vendor libraries (e.g. 2:4 balanced sparsity is only accelerated on Ampere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GpuGeneration {
    /// Volta (V100): first generation with tensor cores (fp16 only).
    Volta,
    /// Turing (T4): adds int8/int4 tensor-core paths; low-power part.
    Turing,
    /// Ampere (A100): adds structured 2:4 sparsity support in the tensor cores.
    Ampere,
}

impl fmt::Display for GpuGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GpuGeneration::Volta => "Volta",
            GpuGeneration::Turing => "Turing",
            GpuGeneration::Ampere => "Ampere",
        };
        f.write_str(s)
    }
}

/// Static description of a GPU used by the analytical cost model.
///
/// All throughputs are peak numbers; the cost model applies per-kernel efficiency
/// factors on top (see [`crate::timing::CostModel`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuArch {
    /// Human-readable device name, e.g. `"V100"`.
    pub name: &'static str,
    /// Architecture generation.
    pub generation: GpuGeneration,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Boost clock in GHz (used only to convert cycle-based overheads to time).
    pub clock_ghz: f64,
    /// Peak tensor-core throughput in TFLOP/s (fp16 multiply, fp32 accumulate).
    pub tensor_core_tflops: f64,
    /// Peak CUDA-core throughput in TFLOP/s for fp16 FMA math.
    pub cuda_core_tflops: f64,
    /// DRAM (HBM2 / GDDR6) bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// Aggregate L2 / last-level-cache bandwidth in GB/s.
    pub l2_bandwidth_gbps: f64,
    /// L2 capacity in bytes.
    pub l2_capacity_bytes: u64,
    /// Shared memory available per SM in bytes.
    pub shared_mem_per_sm_bytes: u32,
    /// Register file size per SM in bytes.
    pub register_file_per_sm_bytes: u32,
    /// Maximum resident threadblocks per SM used by the occupancy model.
    pub max_blocks_per_sm: u32,
    /// Native tensor-core MMA instruction shape.
    pub mma_shape: MmaShape,
    /// Fraction of peak tensor-core throughput a well-tuned dense GEMM achieves on
    /// large shapes (cuBLAS-like efficiency).
    pub dense_gemm_efficiency: f64,
    /// Fraction of peak DRAM bandwidth achievable with fully-coalesced streaming.
    pub streaming_efficiency: f64,
    /// Fixed kernel launch overhead in microseconds.
    pub kernel_launch_overhead_us: f64,
    /// Whether the tensor cores natively accelerate 2:4 balanced sparsity.
    pub supports_sparse_tensor_core: bool,
}

impl GpuArch {
    /// NVIDIA V100 (Volta, SXM2): 125 TFLOP/s fp16 tensor, 31.4 TFLOP/s fp16 CUDA-core,
    /// 900 GB/s HBM2.
    pub fn v100() -> Self {
        GpuArch {
            name: "V100",
            generation: GpuGeneration::Volta,
            sm_count: 80,
            clock_ghz: 1.53,
            tensor_core_tflops: 125.0,
            cuda_core_tflops: 31.4,
            dram_bandwidth_gbps: 900.0,
            l2_bandwidth_gbps: 2_150.0,
            l2_capacity_bytes: 6 * 1024 * 1024,
            shared_mem_per_sm_bytes: 96 * 1024,
            register_file_per_sm_bytes: 256 * 1024,
            max_blocks_per_sm: 32,
            mma_shape: MmaShape::M16N8K16,
            dense_gemm_efficiency: 0.80,
            streaming_efficiency: 0.82,
            kernel_launch_overhead_us: 4.0,
            supports_sparse_tensor_core: false,
        }
    }

    /// NVIDIA T4 (Turing): 65 TFLOP/s fp16 tensor, 16.2 TFLOP/s fp16 CUDA-core,
    /// 320 GB/s GDDR6. The T4 is a 70 W part; sustained tensor-core throughput under
    /// load is well below the datasheet peak, which is captured by a lower dense GEMM
    /// efficiency.
    pub fn t4() -> Self {
        GpuArch {
            name: "T4",
            generation: GpuGeneration::Turing,
            sm_count: 40,
            clock_ghz: 1.59,
            tensor_core_tflops: 65.0,
            cuda_core_tflops: 16.2,
            dram_bandwidth_gbps: 320.0,
            l2_bandwidth_gbps: 1_280.0,
            l2_capacity_bytes: 4 * 1024 * 1024,
            shared_mem_per_sm_bytes: 64 * 1024,
            register_file_per_sm_bytes: 256 * 1024,
            max_blocks_per_sm: 16,
            mma_shape: MmaShape::M16N8K16,
            dense_gemm_efficiency: 0.55,
            streaming_efficiency: 0.80,
            kernel_launch_overhead_us: 4.0,
            supports_sparse_tensor_core: false,
        }
    }

    /// NVIDIA A100 (Ampere, SXM4 40 GB): 312 TFLOP/s fp16 tensor, 78 TFLOP/s fp16
    /// CUDA-core, 1555 GB/s HBM2e, native 2:4 sparse tensor-core support.
    pub fn a100() -> Self {
        GpuArch {
            name: "A100",
            generation: GpuGeneration::Ampere,
            sm_count: 108,
            clock_ghz: 1.41,
            tensor_core_tflops: 312.0,
            cuda_core_tflops: 78.0,
            dram_bandwidth_gbps: 1_555.0,
            l2_bandwidth_gbps: 5_120.0,
            l2_capacity_bytes: 40 * 1024 * 1024,
            shared_mem_per_sm_bytes: 164 * 1024,
            register_file_per_sm_bytes: 256 * 1024,
            max_blocks_per_sm: 32,
            mma_shape: MmaShape::M16N8K16,
            dense_gemm_efficiency: 0.78,
            streaming_efficiency: 0.85,
            kernel_launch_overhead_us: 4.0,
            supports_sparse_tensor_core: true,
        }
    }

    /// All three architecture presets the paper evaluates, in the order the paper
    /// reports them (V100, T4, A100).
    pub fn all() -> Vec<GpuArch> {
        vec![GpuArch::v100(), GpuArch::t4(), GpuArch::a100()]
    }

    /// Look up a preset by (case-insensitive) name.
    ///
    /// Returns `None` when the name does not match any preset.
    pub fn by_name(name: &str) -> Option<GpuArch> {
        match name.to_ascii_lowercase().as_str() {
            "v100" => Some(GpuArch::v100()),
            "t4" => Some(GpuArch::t4()),
            "a100" => Some(GpuArch::a100()),
            _ => None,
        }
    }

    /// Peak tensor-core throughput in FLOP/s.
    pub fn tensor_core_flops(&self) -> f64 {
        self.tensor_core_tflops * 1e12
    }

    /// Peak CUDA-core throughput in FLOP/s.
    pub fn cuda_core_flops(&self) -> f64 {
        self.cuda_core_tflops * 1e12
    }

    /// DRAM bandwidth in bytes/s.
    pub fn dram_bandwidth(&self) -> f64 {
        self.dram_bandwidth_gbps * 1e9
    }

    /// L2 bandwidth in bytes/s.
    pub fn l2_bandwidth(&self) -> f64 {
        self.l2_bandwidth_gbps * 1e9
    }

    /// The operation intensity (FLOP per byte of DRAM traffic) a tensor-core kernel
    /// must reach to become compute-bound on this device — the paper's "MACs per
    /// loaded value" argument (§2.1) divided by two since one MAC is two FLOPs.
    ///
    /// For the A100 preset this is ≈ 200 FLOP/byte (≈ 100 MACs per fp16 value), in the
    /// same regime as the paper's "63 MACs per loaded value" estimate against the
    /// last-level cache.
    pub fn required_intensity_tensor_core(&self) -> f64 {
        self.tensor_core_flops() / self.dram_bandwidth()
    }

    /// Required operation intensity for CUDA-core kernels (FLOP per DRAM byte).
    pub fn required_intensity_cuda_core(&self) -> f64 {
        self.cuda_core_flops() / self.dram_bandwidth()
    }

    /// Required operation intensity against the last-level cache for tensor-core
    /// kernels, expressed as MAC operations per loaded fp16 value. This is the number
    /// the paper quotes as "63 MACs on each loaded value" for A100.
    pub fn required_macs_per_value_llc(&self) -> f64 {
        // One MAC = 2 FLOPs, one fp16 value = 2 bytes.
        (self.tensor_core_flops() / 2.0) / (self.l2_bandwidth() / 2.0)
    }

    /// Ratio of tensor-core to CUDA-core peak throughput (≈ 4× on V100/A100 per the
    /// paper's §2.1).
    pub fn tensor_core_boost(&self) -> f64 {
        self.tensor_core_tflops / self.cuda_core_tflops
    }
}

impl fmt::Display for GpuArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} SMs, {:.0} TFLOP/s TC, {:.0} GB/s DRAM)",
            self.name,
            self.generation,
            self.sm_count,
            self.tensor_core_tflops,
            self.dram_bandwidth_gbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_names() {
        assert_eq!(GpuArch::v100().name, "V100");
        assert_eq!(GpuArch::t4().name, "T4");
        assert_eq!(GpuArch::a100().name, "A100");
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(GpuArch::by_name("v100").unwrap().name, "V100");
        assert_eq!(GpuArch::by_name("A100").unwrap().name, "A100");
        assert_eq!(GpuArch::by_name("t4").unwrap().name, "T4");
        assert!(GpuArch::by_name("h100").is_none());
    }

    #[test]
    fn all_returns_three_presets_in_paper_order() {
        let all = GpuArch::all();
        let names: Vec<_> = all.iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["V100", "T4", "A100"]);
    }

    #[test]
    fn tensor_core_boost_is_roughly_4x() {
        // Paper §2.1: tensor cores exceed CUDA cores by ~4x on V100 and A100.
        let v100 = GpuArch::v100();
        let a100 = GpuArch::a100();
        assert!((v100.tensor_core_boost() - 4.0).abs() < 0.2);
        assert!((a100.tensor_core_boost() - 4.0).abs() < 0.2);
    }

    #[test]
    fn a100_macs_per_value_is_in_paper_regime() {
        // Paper: ~63 MACs per loaded value against the LLC for A100. Our preset uses
        // the aggregate L2 bandwidth, which lands in the same order of magnitude.
        let a100 = GpuArch::a100();
        let macs = a100.required_macs_per_value_llc();
        assert!(macs > 30.0 && macs < 130.0, "macs per value = {macs}");
    }

    #[test]
    fn only_ampere_supports_sparse_tensor_cores() {
        assert!(!GpuArch::v100().supports_sparse_tensor_core);
        assert!(!GpuArch::t4().supports_sparse_tensor_core);
        assert!(GpuArch::a100().supports_sparse_tensor_core);
    }

    #[test]
    fn required_intensity_orders_t4_below_v100() {
        // T4's absolute compute is lowest; its required DRAM intensity is still the
        // highest of the three because its bandwidth is proportionally lower. The
        // speedup asymmetry in the paper comes from the dense baseline efficiency,
        // which is lowest for T4.
        let t4 = GpuArch::t4();
        let v100 = GpuArch::v100();
        assert!(t4.dense_gemm_efficiency < v100.dense_gemm_efficiency);
    }

    #[test]
    fn display_mentions_name_and_generation() {
        let s = format!("{}", GpuArch::a100());
        assert!(s.contains("A100"));
        assert!(s.contains("Ampere"));
    }
}
