//! Software-pipelining and metadata-prefetch model (the paper's Algorithm 1, §4.4).
//!
//! The Shfl-BW SpMM main loop walks the reduction dimension in steps of `T_K`. Each
//! step needs (1) the column-index *metadata* of the weight tile, (2) the weight values
//! and the activation rows the metadata points at, and (3) a tensor-core MMA on the
//! stitched tile. Because the addresses of (2) depend on (1), a naive schedule stalls
//! every iteration on a DRAM-latency round trip. The paper resolves the dependency by
//! prefetching metadata in bulk (`MetaPrefetchStage` steps at a time) and multi-stage
//! buffering of data tiles (`PipeStage`).
//!
//! This module reproduces that schedule and converts the residual stalls into time for
//! the cost model.

use crate::arch::GpuArch;

/// Pipeline configuration of a sparse kernel main loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Number of data-tile buffers (`PipeStage` in Algorithm 1). 1 means no
    /// double-buffering: every iteration waits for its tile load.
    pub pipe_stages: usize,
    /// Number of main-loop steps whose metadata is loaded in one bulk prefetch
    /// (`MetaPrefetchStage`). 0 disables metadata prefetching entirely, so every
    /// iteration pays a dependent-load stall.
    pub meta_prefetch_stages: usize,
}

impl PipelineConfig {
    /// The configuration used by the paper's kernels: multi-stage data buffering with
    /// bulk metadata prefetch.
    pub fn shfl_bw_default() -> Self {
        PipelineConfig {
            pipe_stages: 3,
            meta_prefetch_stages: 8,
        }
    }

    /// A naive single-buffer schedule with no metadata prefetch; used by the kernel
    /// ablation study to quantify how much the prefetching contributes.
    pub fn naive() -> Self {
        PipelineConfig {
            pipe_stages: 1,
            meta_prefetch_stages: 0,
        }
    }

    /// Whether metadata prefetching is enabled.
    pub fn prefetches_metadata(&self) -> bool {
        self.meta_prefetch_stages > 0
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::shfl_bw_default()
    }
}

/// One step of the simulated pipeline schedule (for inspection and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStep {
    /// Main-loop step index (may be negative during the warm-up ramp, in which case
    /// the MMA stage is idle; we only record steps ≥ 0 of the metadata counter).
    pub metaload_step: i64,
    /// Whether this step issues a bulk metadata prefetch.
    pub issues_meta_prefetch: bool,
    /// Data-tile load issued this step (the `load_step` counter), if in range.
    pub load_step: Option<i64>,
    /// MMA compute issued this step (the `step` counter), if in range.
    pub compute_step: Option<i64>,
    /// Whether the compute stage had to stall waiting for un-prefetched metadata.
    pub stalled_on_metadata: bool,
}

/// Model of the pipelined main loop of Algorithm 1.
#[derive(Debug, Clone)]
pub struct PipelineModel {
    config: PipelineConfig,
    /// DRAM round-trip latency in cycles charged to an exposed dependent load.
    dram_latency_cycles: f64,
    /// How much of that latency concurrent warps hide on average (≥ 1).
    latency_hiding_factor: f64,
}

impl PipelineModel {
    /// Creates a pipeline model with the default latency parameters
    /// (≈ 500-cycle DRAM round trip, 8× latency hiding from concurrent warps).
    pub fn new(config: PipelineConfig) -> Self {
        PipelineModel {
            config,
            dram_latency_cycles: 500.0,
            latency_hiding_factor: 8.0,
        }
    }

    /// Overrides the DRAM latency (cycles) and latency-hiding factor.
    pub fn with_latency(mut self, dram_latency_cycles: f64, hiding_factor: f64) -> Self {
        self.dram_latency_cycles = dram_latency_cycles;
        self.latency_hiding_factor = hiding_factor.max(1.0);
        self
    }

    /// The configuration this model simulates.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Generates the schedule of Algorithm 1 for a main loop of `total_steps`
    /// iterations, reproducing the three staggered counters (`metaload_step`,
    /// `load_step`, `step`).
    pub fn schedule(&self, total_steps: usize) -> Vec<PipelineStep> {
        let total = total_steps as i64;
        let meta_ahead = self.config.meta_prefetch_stages as i64;
        let pipe = self.config.pipe_stages.max(1) as i64;

        let mut steps = Vec::new();
        let mut metaload_step: i64 = 0;
        // load_step trails the metadata counter by the prefetch distance; the compute
        // counter trails the load counter by the buffering depth, exactly as in
        // Algorithm 1 lines 1-3.
        let mut load_step: i64 = metaload_step - meta_ahead;
        let mut step: i64 = load_step - pipe;

        while step < total {
            let issues_meta_prefetch = if self.config.prefetches_metadata() {
                metaload_step % meta_ahead.max(1) == 0 && metaload_step < total
            } else {
                metaload_step < total
            };
            let in_load_range = load_step >= 0 && load_step < total;
            let in_compute_range = step >= 0 && step < total;
            let stalled_on_metadata = in_compute_range && !self.config.prefetches_metadata();
            steps.push(PipelineStep {
                metaload_step,
                issues_meta_prefetch,
                load_step: if in_load_range { Some(load_step) } else { None },
                compute_step: if in_compute_range { Some(step) } else { None },
                stalled_on_metadata,
            });
            metaload_step += 1;
            load_step += 1;
            step += 1;
        }
        steps
    }

    /// Number of main-loop iterations that expose a dependent-metadata stall for a
    /// loop of `total_steps` iterations.
    pub fn exposed_stalls(&self, total_steps: usize) -> u64 {
        if self.config.prefetches_metadata() && self.config.pipe_stages >= 2 {
            // Bulk prefetch removes the per-iteration dependency; only the first bulk
            // load of each threadblock is exposed.
            if total_steps == 0 {
                0
            } else {
                1
            }
        } else if self.config.prefetches_metadata() {
            // Metadata is ahead of time but single-buffered data loads still expose a
            // fraction of the latency.
            (total_steps as u64).div_ceil(2)
        } else {
            total_steps as u64
        }
    }

    /// Converts a number of exposed stalls into microseconds on `arch`.
    pub fn stall_time_us(&self, arch: &GpuArch, exposed_stalls: u64) -> f64 {
        let cycles = self.dram_latency_cycles / self.latency_hiding_factor;
        let us_per_stall = cycles / (arch.clock_ghz * 1e3);
        exposed_stalls as f64 * us_per_stall
    }
}

impl Default for PipelineModel {
    fn default() -> Self {
        PipelineModel::new(PipelineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_prefetches() {
        let c = PipelineConfig::default();
        assert!(c.prefetches_metadata());
        assert!(c.pipe_stages >= 2);
    }

    #[test]
    fn naive_config_does_not_prefetch() {
        assert!(!PipelineConfig::naive().prefetches_metadata());
    }

    #[test]
    fn schedule_covers_every_compute_step_exactly_once() {
        let model = PipelineModel::default();
        let total = 37;
        let schedule = model.schedule(total);
        let computed: Vec<i64> = schedule.iter().filter_map(|s| s.compute_step).collect();
        assert_eq!(computed.len(), total);
        assert_eq!(computed.first(), Some(&0));
        assert_eq!(computed.last(), Some(&((total - 1) as i64)));
    }

    #[test]
    fn schedule_loads_lead_compute_by_pipeline_depth() {
        let cfg = PipelineConfig {
            pipe_stages: 3,
            meta_prefetch_stages: 4,
        };
        let model = PipelineModel::new(cfg);
        let schedule = model.schedule(20);
        // Find the step where compute 0 happens; load counter must already be at 3.
        let s = schedule
            .iter()
            .find(|s| s.compute_step == Some(0))
            .expect("compute step 0 scheduled");
        assert_eq!(s.load_step, Some(3));
        assert_eq!(s.metaload_step, 3 + 4);
    }

    #[test]
    fn bulk_prefetch_issues_every_n_steps() {
        let cfg = PipelineConfig {
            pipe_stages: 2,
            meta_prefetch_stages: 4,
        };
        let model = PipelineModel::new(cfg);
        let schedule = model.schedule(16);
        let prefetches = schedule.iter().filter(|s| s.issues_meta_prefetch).count();
        // One prefetch per 4 metadata steps over the in-range portion of the loop.
        assert_eq!(prefetches, 4);
    }

    #[test]
    fn exposed_stalls_prefetched_vs_naive() {
        let prefetched = PipelineModel::new(PipelineConfig::shfl_bw_default());
        let naive = PipelineModel::new(PipelineConfig::naive());
        assert_eq!(prefetched.exposed_stalls(0), 0);
        assert_eq!(prefetched.exposed_stalls(128), 1);
        assert_eq!(naive.exposed_stalls(128), 128);
    }

    #[test]
    fn stall_time_scales_with_stall_count_and_latency() {
        let arch = GpuArch::v100();
        let model = PipelineModel::new(PipelineConfig::naive()).with_latency(600.0, 1.0);
        let t1 = model.stall_time_us(&arch, 1);
        let t10 = model.stall_time_us(&arch, 10);
        assert!((t10 / t1 - 10.0).abs() < 1e-9);
        // 600 cycles at 1.53 GHz is ~0.39 us.
        assert!((t1 - 0.392).abs() < 0.02);
    }

    #[test]
    fn naive_schedule_marks_compute_steps_stalled() {
        let model = PipelineModel::new(PipelineConfig::naive());
        let schedule = model.schedule(8);
        let stalled = schedule.iter().filter(|s| s.stalled_on_metadata).count();
        assert_eq!(stalled, 8);
    }
}
