//! Analytical latency model.
//!
//! The model is a hierarchical roofline: a kernel's execution time is bounded below by
//! its compute time (FLOPs over achievable FLOP/s), its DRAM time (bytes over
//! achievable bandwidth) and its L2 time, whichever is largest, plus exposed pipeline
//! stalls and the fixed launch overhead. Wave quantisation (partially-filled last
//! waves) inflates the compute component.
//!
//! This is exactly the reasoning the paper uses to argue about sparse kernel
//! performance: tensor cores raise the compute roof by ~4× without changing the
//! bandwidth roof, so a sparse kernel only profits when its operation intensity
//! (FLOP/byte) stays high enough — which is what the Shfl-BW format restores by
//! enabling dense `V×V` tiling.

use crate::arch::GpuArch;
use crate::occupancy::{occupancy, Occupancy};
use crate::stats::{ComputeUnit, KernelStats};
use std::fmt;

/// Which roof a kernel ended up limited by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// Limited by functional-unit throughput (tensor-core or CUDA-core FLOP/s).
    Compute,
    /// Limited by DRAM bandwidth.
    DramBandwidth,
    /// Limited by L2 / last-level-cache bandwidth.
    L2Bandwidth,
    /// Limited by exposed dependent-load stalls or launch overhead (tiny kernels).
    Latency,
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Bound::Compute => "compute-bound",
            Bound::DramBandwidth => "DRAM-bandwidth-bound",
            Bound::L2Bandwidth => "L2-bandwidth-bound",
            Bound::Latency => "latency-bound",
        };
        f.write_str(s)
    }
}

/// Breakdown of one kernel's estimated execution time, in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// Time to issue all FLOPs at the achievable compute throughput, inflated by wave
    /// quantisation.
    pub compute_us: f64,
    /// Time to move all DRAM traffic at the achievable bandwidth.
    pub dram_us: f64,
    /// Time to move all L2 traffic at the L2 bandwidth.
    pub l2_us: f64,
    /// Exposed dependent-load stall time (see [`crate::pipeline`]).
    pub stall_us: f64,
    /// Fixed kernel launch overhead.
    pub launch_us: f64,
    /// Total estimated execution time (`max(compute, dram, l2) + stall + launch`).
    pub total_us: f64,
    /// Which component dominated.
    pub bound: Bound,
    /// Occupancy details used for the wave-quantisation correction.
    pub occupancy: Occupancy,
    /// Achieved fraction of the device's peak throughput for the unit the kernel
    /// targets (useful for Figure-1-style normalised-throughput plots).
    pub achieved_compute_fraction: f64,
}

impl KernelTiming {
    /// Achieved throughput in TFLOP/s given the kernel's useful FLOPs.
    pub fn achieved_tflops(&self, flops: u64) -> f64 {
        if self.total_us <= 0.0 {
            0.0
        } else {
            flops as f64 / (self.total_us * 1e-6) / 1e12
        }
    }
}

impl fmt::Display for KernelTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} us total ({}; compute {:.2}, dram {:.2}, l2 {:.2}, stall {:.2}, launch {:.2})",
            self.total_us,
            self.bound,
            self.compute_us,
            self.dram_us,
            self.l2_us,
            self.stall_us,
            self.launch_us
        )
    }
}

/// Converts [`KernelStats`] into [`KernelTiming`] for one architecture.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    arch: &'a GpuArch,
    /// Extra stall time to add (computed by the kernel from its pipeline model).
    extra_stall_us: f64,
    /// Whether to include the fixed kernel launch overhead (model-level aggregation
    /// over many layers usually keeps it; micro-benchmarks of a resident kernel may
    /// disable it).
    include_launch_overhead: bool,
}

impl<'a> CostModel<'a> {
    /// Creates a cost model for an architecture with default settings.
    pub fn new(arch: &'a GpuArch) -> Self {
        CostModel {
            arch,
            extra_stall_us: 0.0,
            include_launch_overhead: true,
        }
    }

    /// Adds pre-computed stall time (e.g. from [`crate::pipeline::PipelineModel`]).
    pub fn with_stall_us(mut self, stall_us: f64) -> Self {
        self.extra_stall_us = stall_us.max(0.0);
        self
    }

    /// Enables or disables the fixed launch overhead.
    pub fn with_launch_overhead(mut self, include: bool) -> Self {
        self.include_launch_overhead = include;
        self
    }

    /// The architecture this model targets.
    pub fn arch(&self) -> &GpuArch {
        self.arch
    }

    /// Estimates the execution time of a kernel described by `stats`.
    pub fn estimate(&self, stats: &KernelStats) -> KernelTiming {
        let arch = self.arch;
        let occ = occupancy(arch, stats);

        // Achievable compute throughput: peak for the unit, derated by the kernel's
        // instruction-mix efficiency and (for tensor cores) the MMA utilisation of the
        // tile shapes it issues.
        let peak_flops = match stats.compute_unit() {
            ComputeUnit::TensorCore => arch.tensor_core_flops(),
            ComputeUnit::CudaCore => arch.cuda_core_flops(),
        };
        let unit_utilization = match stats.compute_unit() {
            ComputeUnit::TensorCore => stats.mma_utilization(),
            ComputeUnit::CudaCore => 1.0,
        };
        let achievable_flops =
            (peak_flops * stats.compute_efficiency() * unit_utilization).max(1.0);
        let raw_compute_us = stats.flops() as f64 / achievable_flops * 1e6;
        // Wave quantisation inflates the compute time: the last partially-filled wave
        // runs as long as a full one.
        let compute_us = raw_compute_us / occ.wave_efficiency;

        // Achievable DRAM bandwidth: peak derated by streaming efficiency and the
        // kernel's coalescing behaviour.
        let achievable_bw =
            arch.dram_bandwidth() * arch.streaming_efficiency * stats.coalescing_factor();
        let dram_us = stats.dram_bytes() as f64 / achievable_bw.max(1.0) * 1e6;

        let l2_us = stats.l2_read_bytes() as f64 / arch.l2_bandwidth().max(1.0) * 1e6;

        let stall_us = self.extra_stall_us;
        let launch_us = if self.include_launch_overhead {
            arch.kernel_launch_overhead_us
        } else {
            0.0
        };

        let busy_us = compute_us.max(dram_us).max(l2_us);
        let total_us = busy_us + stall_us + launch_us;

        let bound = if stall_us + launch_us > busy_us {
            Bound::Latency
        } else if busy_us == compute_us {
            Bound::Compute
        } else if busy_us == dram_us {
            Bound::DramBandwidth
        } else {
            Bound::L2Bandwidth
        };

        let achieved_compute_fraction = if total_us > 0.0 {
            (stats.flops() as f64 / (total_us * 1e-6)) / peak_flops
        } else {
            0.0
        };

        KernelTiming {
            compute_us,
            dram_us,
            l2_us,
            stall_us,
            launch_us,
            total_us,
            bound,
            occupancy: occ,
            achieved_compute_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds stats for a dense GEMM of the given shape with simple compulsory
    /// traffic, fp16 operands. Emulates a library that splits the reduction dimension
    /// (split-K) when the output grid alone cannot fill the device, as cuBLAS does.
    fn gemm_stats(m: u64, n: u64, k: u64, unit: ComputeUnit, efficiency: f64) -> KernelStats {
        let mut s = KernelStats::new(unit);
        s.add_flops(2 * m * n * k);
        s.add_dram_read(2 * (m * k + k * n));
        s.add_dram_write(2 * m * n);
        let output_blocks = (m.div_ceil(128)) * (n.div_ceil(128));
        let split_k = (160u64.div_ceil(output_blocks)).clamp(1, 8);
        s.set_threadblocks(output_blocks * split_k);
        s.set_shared_bytes_per_block(64 * 1024);
        s.set_compute_efficiency(efficiency);
        s
    }

    #[test]
    fn large_gemm_is_compute_bound_on_tensor_cores() {
        let arch = GpuArch::v100();
        let stats = gemm_stats(4096, 4096, 4096, ComputeUnit::TensorCore, 0.8);
        let t = CostModel::new(&arch).estimate(&stats);
        assert_eq!(t.bound, Bound::Compute);
        assert!(t.total_us > 0.0);
    }

    #[test]
    fn skinny_gemm_achieves_much_less_of_peak_than_large_gemm() {
        // M/N/K = 2048/128/2048 (the paper's Figure 1 shape) exposes far less data
        // reuse than a large square GEMM, so tensor cores are noticeably less
        // utilised — the paper's motivation for caring about operation intensity.
        for arch in GpuArch::all() {
            let skinny = gemm_stats(2048, 128, 2048, ComputeUnit::TensorCore, 0.8);
            let large = gemm_stats(4096, 4096, 4096, ComputeUnit::TensorCore, 0.8);
            let ts = CostModel::new(&arch).estimate(&skinny);
            let tl = CostModel::new(&arch).estimate(&large);
            assert!(
                ts.achieved_compute_fraction < 0.9 * tl.achieved_compute_fraction,
                "arch {}: skinny {} vs large {}",
                arch.name,
                ts.achieved_compute_fraction,
                tl.achieved_compute_fraction
            );
        }
    }

    #[test]
    fn tensor_core_beats_cuda_core_on_compute_bound_gemm() {
        let arch = GpuArch::a100();
        let tc = CostModel::new(&arch).estimate(&gemm_stats(
            8192,
            8192,
            8192,
            ComputeUnit::TensorCore,
            0.8,
        ));
        let cc = CostModel::new(&arch).estimate(&gemm_stats(
            8192,
            8192,
            8192,
            ComputeUnit::CudaCore,
            0.8,
        ));
        let ratio = cc.total_us / tc.total_us;
        assert!(ratio > 3.0, "tensor-core speedup was only {ratio}");
    }

    #[test]
    fn less_dram_traffic_means_less_time_when_memory_bound() {
        let arch = GpuArch::t4();
        let dense = gemm_stats(2048, 128, 2048, ComputeUnit::TensorCore, 0.8);
        let mut sparse = gemm_stats(2048, 128, 2048, ComputeUnit::TensorCore, 0.8);
        // Pretend 75% of the weight bytes vanish.
        sparse = {
            let mut s = KernelStats::new(ComputeUnit::TensorCore);
            s.add_flops(dense.flops() / 4);
            s.add_dram_read(2 * (2048 * 2048 / 4 + 2048 * 128));
            s.add_dram_write(2 * 2048 * 128);
            s.set_threadblocks(sparse.threadblocks());
            s.set_shared_bytes_per_block(64 * 1024);
            s.set_compute_efficiency(0.8);
            s
        };
        let td = CostModel::new(&arch).estimate(&dense);
        let ts = CostModel::new(&arch).estimate(&sparse);
        assert!(ts.total_us < td.total_us);
    }

    #[test]
    fn stall_and_launch_overhead_are_added() {
        let arch = GpuArch::v100();
        let stats = gemm_stats(256, 128, 256, ComputeUnit::TensorCore, 0.8);
        let base = CostModel::new(&arch)
            .with_launch_overhead(false)
            .estimate(&stats);
        let with_overheads = CostModel::new(&arch).with_stall_us(50.0).estimate(&stats);
        assert!(with_overheads.total_us > base.total_us + 50.0);
        assert_eq!(with_overheads.bound, Bound::Latency);
    }

    #[test]
    fn poor_coalescing_increases_memory_time() {
        let arch = GpuArch::v100();
        let mut good = gemm_stats(2048, 128, 2048, ComputeUnit::CudaCore, 0.8);
        good.set_coalescing_factor(1.0);
        let mut bad = good.clone();
        bad.set_coalescing_factor(0.25);
        let tg = CostModel::new(&arch).estimate(&good);
        let tb = CostModel::new(&arch).estimate(&bad);
        assert!(tb.dram_us > 3.0 * tg.dram_us);
    }

    #[test]
    fn achieved_tflops_is_consistent() {
        let arch = GpuArch::a100();
        let stats = gemm_stats(4096, 4096, 4096, ComputeUnit::TensorCore, 0.8);
        let t = CostModel::new(&arch).estimate(&stats);
        let tflops = t.achieved_tflops(stats.flops());
        assert!(tflops > 0.0);
        assert!(tflops <= arch.tensor_core_tflops);
    }

    #[test]
    fn timing_display_mentions_bound() {
        let arch = GpuArch::v100();
        let stats = gemm_stats(1024, 1024, 1024, ComputeUnit::TensorCore, 0.8);
        let t = CostModel::new(&arch).estimate(&stats);
        let s = format!("{t}");
        assert!(s.contains("us total"));
    }
}
