//! Figure 6 bench: regenerates the full speedup grid (3 GPUs × 3 models × sparsity ×
//! pattern) and the abstract's headline numbers, and benchmarks representative
//! model-level speedup computations.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::GpuArch;
use shfl_bench::experiments::fig6;
use shfl_bench::experiments::speedup::{model_speedup, KernelChoice};
use shfl_models::workload::DnnModel;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    println!("Headline: Shfl-BW speedup on Transformer GEMM layers at 75% sparsity");
    println!("(paper reports 1.81x on V100, 4.18x on T4, 1.90x on A100)");
    for (gpu, speedup) in fig6::headline_transformer_speedups() {
        println!("  {gpu:5}: {speedup:.2}x");
    }
    println!();
    println!("{}", fig6::to_table(&fig6::run(false)));

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    let t4 = GpuArch::t4();
    group.bench_function("transformer_shfl_bw_v64_75pct_t4", |b| {
        b.iter(|| {
            black_box(model_speedup(
                &t4,
                DnnModel::Transformer,
                fig6::BATCH,
                fig6::SEQ_LEN,
                0.75,
                KernelChoice::ShflBw(64),
            ))
        })
    });
    let a100 = GpuArch::a100();
    group.bench_function("resnet50_shfl_bw_v32_85pct_a100", |b| {
        b.iter(|| {
            black_box(model_speedup(
                &a100,
                DnnModel::Resnet50,
                fig6::BATCH,
                fig6::SEQ_LEN,
                0.85,
                KernelChoice::ShflBw(32),
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6
}
criterion_main!(benches);
