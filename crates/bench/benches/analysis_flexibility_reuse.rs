//! §3.2 analysis bench: regenerates the flexibility / data-reuse comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use shfl_bench::experiments::analysis;
use shfl_core::analysis::{ln_candidate_structures, max_reuse};
use shfl_core::SparsePattern;
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    println!("{}", analysis::to_table(&analysis::run()));

    let mut group = c.benchmark_group("analysis");
    group.bench_function("ln_candidates_shfl_bw_v64_4096x4096", |b| {
        b.iter(|| {
            black_box(ln_candidate_structures(
                SparsePattern::ShflBw { v: 64 },
                4096,
                4096,
                0.25,
            ))
        })
    });
    group.bench_function("max_reuse_all_patterns", |b| {
        b.iter(|| {
            for pattern in [
                SparsePattern::Unstructured,
                SparsePattern::Balanced { m: 2, n: 4 },
                SparsePattern::BlockWise { v: 64 },
                SparsePattern::ShflBw { v: 64 },
            ] {
                black_box(max_reuse(pattern, 0.25, analysis::REGFILE_BYTES));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_analysis
}
criterion_main!(benches);
