//! Figure 2 bench: regenerates the GNMT accuracy–speedup trade-off curve.

use criterion::{criterion_group, criterion_main, Criterion};
use shfl_bench::experiments::fig2;
use shfl_core::SparsePattern;
use shfl_models::accuracy::AccuracyModel;
use shfl_models::workload::DnnModel;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    println!("{}", fig2::to_table(&fig2::run()));

    let proxy = AccuracyModel::new(DnnModel::Gnmt);
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("accuracy_proxy_shfl_bw_v32_80pct", |b| {
        b.iter(|| black_box(proxy.evaluate(SparsePattern::ShflBw { v: 32 }, 0.8)))
    });
    group.bench_function("accuracy_proxy_vector_wise_v32_80pct", |b| {
        b.iter(|| black_box(proxy.evaluate(SparsePattern::VectorWise { v: 32 }, 0.8)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2
}
criterion_main!(benches);
