//! Figure 1 bench: regenerates the throughput-vs-density sweep and benchmarks the
//! kernel simulations that produce it.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::GpuArch;
use shfl_bench::experiments::fig1;
use shfl_bench::experiments::speedup::{layer_time_us, KernelChoice};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    // Print the reproduced figure once so `cargo bench` output contains the series.
    for arch in GpuArch::all() {
        println!("[{arch}]");
        println!("{}", fig1::to_table(&fig1::run(&arch)));
    }

    let (m, n, k) = fig1::FIG1_SHAPE;
    let arch = GpuArch::v100();
    let mut group = c.benchmark_group("fig1");
    group.bench_function("dense_gemm_profile_2048x128x2048", |b| {
        b.iter(|| {
            black_box(layer_time_us(&arch, m, n, k, 1, 0.0, KernelChoice::Dense));
        })
    });
    group.bench_function("shfl_bw_profile_75pct_2048x128x2048", |b| {
        b.iter(|| {
            black_box(layer_time_us(
                &arch,
                m,
                n,
                k,
                1,
                0.75,
                KernelChoice::ShflBw(64),
            ));
        })
    });
    group.bench_function("sputnik_profile_75pct_2048x128x2048", |b| {
        b.iter(|| {
            black_box(layer_time_us(
                &arch,
                m,
                n,
                k,
                1,
                0.75,
                KernelChoice::Sputnik,
            ));
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1
}
criterion_main!(benches);
