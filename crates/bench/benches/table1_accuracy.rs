//! Table 1 bench: regenerates the pruned-model quality table and benchmarks the
//! Shfl-BW pattern search on a proxy-sized matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use shfl_bench::experiments::table1;
use shfl_core::DenseMatrix;
use shfl_pruning::{Pruner, ShflBwPruner, VectorWisePruner};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    println!("{}", table1::to_table(&table1::run()));

    let mut rng = StdRng::seed_from_u64(1);
    let scores = DenseMatrix::random(&mut rng, 256, 512).abs();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("shfl_bw_search_v32_256x512_20pct", |b| {
        b.iter(|| black_box(ShflBwPruner::new(32).prune(&scores, 0.2).unwrap()))
    });
    group.bench_function("vector_wise_prune_v32_256x512_20pct", |b| {
        b.iter(|| black_box(VectorWisePruner::new(32).prune(&scores, 0.2).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(benches);
