//! Kernel-design ablation bench: shuffle overhead, metadata prefetch, vector-size
//! sweep (§4, §6.2).

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::GpuArch;
use shfl_bench::experiments::ablation;
use shfl_bench::synth;
use shfl_kernels::spmm::{shfl_bw_spmm_profile_with, ShflBwKernelConfig};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    println!(
        "{}",
        ablation::to_table(
            &ablation::shuffle_overhead(),
            &ablation::prefetch_ablation(),
            &ablation::vector_size_sweep(),
        )
    );

    let (m, n, k) = ablation::ABLATION_SHAPE;
    let shfl = synth::shfl_bw_matrix(3, m, k, 64, ablation::ABLATION_DENSITY);
    let arch = GpuArch::v100();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("shfl_bw_profile_with_prefetch", |b| {
        b.iter(|| {
            black_box(shfl_bw_spmm_profile_with(
                &arch,
                &shfl,
                n,
                &ShflBwKernelConfig::paper_default(),
            ))
        })
    });
    group.bench_function("shfl_bw_profile_without_prefetch", |b| {
        b.iter(|| {
            black_box(shfl_bw_spmm_profile_with(
                &arch,
                &shfl,
                n,
                &ShflBwKernelConfig::without_prefetch(),
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
