//! Reader for `BENCH_kernels.json` — v1 and v2 schemas.
//!
//! The benchmark trajectory only works if every PR can read the numbers the
//! previous PRs wrote. Schema **v1** recorded `naive_ms`/`blocked_ms` per
//! kernel; schema **v2** (this PR) adds the plan-build and prepared columns,
//! the git revision, and the end-to-end model section. [`parse_report`]
//! accepts both: v1 files surface with `plan_build_ms`/`prepared_ms` as
//! `None` and an empty model list, so comparisons across the schema change
//! stay possible.
//!
//! The offline build has no serde, so this module carries a minimal
//! recursive-descent JSON parser (objects, arrays, strings, numbers, bools,
//! null) — enough for the fixed benchmark schema and small hand-written
//! fixtures.

use std::collections::BTreeMap;

/// A parsed JSON value (minimal offline parser).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Number(f64),
    /// A string (escape sequences decoded).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (key order not preserved).
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Option<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn parse_value(&mut self) -> Option<Json> {
        self.skip_ws();
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Some(Json::String(self.parse_string()?)),
            b't' => self.parse_keyword("true", Json::Bool(true)),
            b'f' => self.parse_keyword("false", Json::Bool(false)),
            b'n' => self.parse_keyword("null", Json::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Option<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(value)
        } else {
            None
        }
    }

    fn parse_object(&mut self) -> Option<Json> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Json::Object(map));
                }
                _ => return None,
            }
        }
    }

    fn parse_array(&mut self) -> Option<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Json::Array(items));
                }
                _ => return None,
            }
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escaped = self.peek()?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            self.pos += 4;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let ch = rest.chars().next()?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Option<Json> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Number)
    }
}

/// Parses a JSON document (returns `None` on malformed input or trailing
/// garbage).
pub fn parse_json(input: &str) -> Option<Json> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos == parser.bytes.len() {
        Some(value)
    } else {
        None
    }
}

/// One kernel row of a benchmark report (schema v1 or v2).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Kernel name.
    pub kernel: String,
    /// Problem shape.
    pub shape: String,
    /// Naive reference wall-clock, ms.
    pub naive_ms: f64,
    /// Cold blocked wall-clock, ms.
    pub blocked_ms: f64,
    /// Plan-build wall-clock, ms (v2 only).
    pub plan_build_ms: Option<f64>,
    /// Prepared execute wall-clock, ms (v2 only).
    pub prepared_ms: Option<f64>,
    /// Recorded naive-over-blocked speedup.
    pub speedup: f64,
    /// Whether the paths were bit-identical in that run.
    pub bit_identical: bool,
    /// Whether the row carries the headline target.
    pub headline: bool,
}

/// One model row of a v2 benchmark report.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRecord {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Forward-pass wall-clock, ms.
    pub forward_ms: f64,
    /// Functional throughput (items/s).
    pub throughput: f64,
    /// Unit (`tokens/s` / `images/s`).
    pub unit: String,
    /// Steady-state plan-cache hit rate of the serving trace (absent before
    /// the bucketed serving stack).
    pub serving_hit_rate: Option<f64>,
    /// Aggregate items/s of the bucketed serving trace.
    pub serving_throughput: Option<f64>,
    /// Aggregate items/s of the per-request cold-plan baseline on the same
    /// trace.
    pub serving_cold_throughput: Option<f64>,
    /// Whether the bucketed trace was bit-identical to the cold oracle.
    pub serving_bit_identical: Option<bool>,
    /// Panel bytes the fused multi-segment probe streamed (absent before the
    /// fused-sweep serving path).
    pub serving_panel_bytes_fused: Option<f64>,
    /// Panel bytes the per-segment baseline streamed on the same probe.
    pub serving_panel_bytes_segmented: Option<f64>,
    /// Coalesced-scheduler wall-clock on the fan-out trace, ms.
    pub serving_coalesced_wall_ms: Option<f64>,
    /// Uncoalesced fan-out wall-clock on the same trace, ms.
    pub serving_mt_wall_ms: Option<f64>,
    /// Continuous-batching trace: windowed-server wall, ms (absent before
    /// the `Server` front-end existed).
    pub serving_cb_windowed_wall_ms: Option<f64>,
    /// Continuous-batching trace: zero-window baseline wall, ms.
    pub serving_cb_zero_wall_ms: Option<f64>,
    /// Whether the windowed responses were bit-identical to per-request
    /// cold execution.
    pub serving_cb_bit_identical: Option<bool>,
    /// Deadline-class p99 end-to-end latency of the windowed run, ms.
    pub serving_cb_deadline_p99_ms: Option<f64>,
    /// Bulk-class p99 end-to-end latency of the windowed run, ms.
    pub serving_cb_bulk_p99_ms: Option<f64>,
    /// Best coalescing cap (columns) of the cap sweep on the recording box.
    pub serving_cb_best_cap: Option<f64>,
    /// Bulk requests shed on the overload sub-trace (door + queued).
    pub serving_cb_overload_shed: Option<f64>,
    /// Shed fraction of the overload sub-trace's bulk arrivals.
    pub serving_cb_overload_shed_rate: Option<f64>,
    /// Deadline-class p99 of the overload sub-trace, ms.
    pub serving_cb_overload_deadline_p99_ms: Option<f64>,
    /// Bulk-class p99 of the overload sub-trace, ms.
    pub serving_cb_overload_bulk_p99_ms: Option<f64>,
    /// Weight swaps published by the live-update sub-trace (absent before
    /// zero-downtime updates existed).
    pub serving_cb_update_swaps: Option<f64>,
    /// 99th-percentile swap latency of the live-update sub-trace, ms.
    pub serving_cb_update_swap_p99_ms: Option<f64>,
    /// Delta-re-pack bytes over full-rebuild bytes across the swaps.
    pub serving_cb_repack_bytes_ratio: Option<f64>,
    /// Executes that finished on a superseded version snapshot.
    pub serving_cb_stale_plan_executes: Option<f64>,
    /// Accepted tickets that failed during the update sub-trace.
    pub serving_cb_update_failed_requests: Option<f64>,
    /// Data-parallel replicas of the replicated serving sub-trace (absent
    /// before the replicated tier existed).
    pub serving_cb_replica_count: Option<f64>,
    /// Dispatches that failed over off their killed home replica.
    pub serving_cb_replica_failovers: Option<f64>,
    /// p99 service time of failed-over dispatches, ms.
    pub serving_cb_failover_p99_ms: Option<f64>,
    /// Hedged Deadline dispatches won by the alternate replica.
    pub serving_cb_hedge_wins: Option<f64>,
    /// Bulk fraction shed while the fleet was degraded below the routable
    /// capacity threshold.
    pub serving_cb_degraded_shed_rate: Option<f64>,
    /// Accepted replicated-trace tickets that failed with anything but the
    /// typed degraded-mode shed (or mismatched the oracle bits).
    pub serving_cb_replica_failed_requests: Option<f64>,
    /// Aggregate interleaved decode throughput of the decode-session
    /// sub-trace, tokens/s (absent before decode sessions existed, and on
    /// models the sub-trace skips).
    pub serving_decode_tokens_s: Option<f64>,
    /// Median per-token service time of the interleaved decode run, ms.
    pub serving_decode_token_p50_ms: Option<f64>,
    /// 99th-percentile per-token service time, ms.
    pub serving_decode_token_p99_ms: Option<f64>,
    /// Mean columns per interleave sweep (> 1 means sequences coalesced).
    pub serving_decode_mean_interleave_width: Option<f64>,
    /// Sessions evicted under the scripted mid-trace pressure.
    pub serving_decode_evictions: Option<f64>,
    /// Evicted sessions resumed.
    pub serving_decode_resumed: Option<f64>,
    /// Accepted decode tokens that never arrived (the zero-loss gate).
    pub serving_decode_lost_tokens: Option<f64>,
    /// Whether the checked decode sessions matched the cold oracle bit for
    /// bit.
    pub serving_decode_bit_identical: Option<bool>,
    /// Per-token throughput of the serial one-session-at-a-time baseline,
    /// tokens/s.
    pub serving_decode_serial_tokens_s: Option<f64>,
    /// Implicit-conv transform bytes read per forward (absent before the
    /// implicit-GEMM conv plans existed).
    pub conv_input_bytes_read: Option<f64>,
    /// Im2col bytes the implicit conv path avoids materialising per forward.
    pub conv_im2col_bytes_avoided: Option<f64>,
    /// Implicit-conv forward throughput, images/s.
    pub conv_implicit_images_s: Option<f64>,
    /// Materialised-im2col forward throughput, images/s.
    pub conv_im2col_images_s: Option<f64>,
    /// Recorded implicit-over-im2col forward speedup.
    pub conv_speedup: Option<f64>,
    /// Whether the implicit conv outputs matched the cold im2col oracle bit
    /// for bit.
    pub conv_bit_identical: Option<bool>,
    /// Bytes charged to the im2col traffic counter during an implicit
    /// forward (0 when the implicit path materialises nothing).
    pub conv_im2col_bytes_on_implicit: Option<f64>,
}

/// A parsed `BENCH_kernels.json`, any supported schema.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version (1 or 2).
    pub schema_version: u32,
    /// Thread count recorded in the run.
    pub threads: usize,
    /// Git revision (v2 only).
    pub git_rev: Option<String>,
    /// Per-kernel rows.
    pub kernels: Vec<KernelRecord>,
    /// Per-model rows (empty for v1).
    pub models: Vec<ModelRecord>,
}

/// Parses a `BENCH_kernels.json` document of schema v1 or v2. Returns `None`
/// for malformed JSON or an unknown schema string.
pub fn parse_report(input: &str) -> Option<BenchReport> {
    let doc = parse_json(input)?;
    let schema = doc.get("schema")?.as_str()?;
    let schema_version = match schema {
        "shfl-bw-repro/bench-kernels/v1" => 1,
        "shfl-bw-repro/bench-kernels/v2" => 2,
        _ => return None,
    };
    let threads = doc.get("threads")?.as_f64()? as usize;
    let git_rev = doc
        .get("git_rev")
        .and_then(Json::as_str)
        .map(str::to_string);
    let mut kernels = Vec::new();
    for row in doc.get("results")?.as_array()? {
        kernels.push(KernelRecord {
            kernel: row.get("kernel")?.as_str()?.to_string(),
            shape: row.get("shape")?.as_str()?.to_string(),
            naive_ms: row.get("naive_ms")?.as_f64()?,
            blocked_ms: row.get("blocked_ms")?.as_f64()?,
            plan_build_ms: row.get("plan_build_ms").and_then(Json::as_f64),
            prepared_ms: row.get("prepared_ms").and_then(Json::as_f64),
            speedup: row.get("speedup")?.as_f64()?,
            bit_identical: row.get("bit_identical")?.as_bool()?,
            headline: row.get("headline")?.as_bool()?,
        });
    }
    let mut models = Vec::new();
    if let Some(rows) = doc.get("models").and_then(Json::as_array) {
        for row in rows {
            let serving = row.get("serving");
            let serving_field = |key: &str| serving.and_then(|s| s.get(key)).and_then(Json::as_f64);
            let continuous = serving.and_then(|s| s.get("continuous"));
            let cb_field = |key: &str| continuous.and_then(|c| c.get(key)).and_then(Json::as_f64);
            let decode = serving.and_then(|s| s.get("decode"));
            let decode_field = |key: &str| decode.and_then(|d| d.get(key)).and_then(Json::as_f64);
            let conv = row.get("conv_implicit");
            let conv_field = |key: &str| conv.and_then(|c| c.get(key)).and_then(Json::as_f64);
            models.push(ModelRecord {
                model: row.get("model")?.as_str()?.to_string(),
                batch: row.get("batch")?.as_f64()? as usize,
                seq_len: row.get("seq_len")?.as_f64()? as usize,
                forward_ms: row.get("forward_ms")?.as_f64()?,
                throughput: row.get("throughput")?.as_f64()?,
                unit: row.get("unit")?.as_str()?.to_string(),
                serving_hit_rate: serving_field("hit_rate"),
                serving_throughput: serving_field("throughput"),
                serving_cold_throughput: serving_field("cold_throughput"),
                serving_bit_identical: serving
                    .and_then(|s| s.get("bit_identical"))
                    .and_then(Json::as_bool),
                serving_panel_bytes_fused: serving_field("panel_bytes_fused"),
                serving_panel_bytes_segmented: serving_field("panel_bytes_segmented"),
                serving_coalesced_wall_ms: serving_field("coalesced_wall_ms"),
                serving_mt_wall_ms: serving_field("mt_wall_ms"),
                serving_cb_windowed_wall_ms: cb_field("windowed_wall_ms"),
                serving_cb_zero_wall_ms: cb_field("zero_wall_ms"),
                serving_cb_bit_identical: continuous
                    .and_then(|c| c.get("bit_identical"))
                    .and_then(Json::as_bool),
                serving_cb_deadline_p99_ms: cb_field("deadline_p99_ms"),
                serving_cb_bulk_p99_ms: cb_field("bulk_p99_ms"),
                serving_cb_best_cap: cb_field("best_cap"),
                serving_cb_overload_shed: cb_field("overload_shed"),
                serving_cb_overload_shed_rate: cb_field("overload_shed_rate"),
                serving_cb_overload_deadline_p99_ms: cb_field("overload_deadline_p99_ms"),
                serving_cb_overload_bulk_p99_ms: cb_field("overload_bulk_p99_ms"),
                serving_cb_update_swaps: cb_field("update_swaps"),
                serving_cb_update_swap_p99_ms: cb_field("update_swap_p99_ms"),
                serving_cb_repack_bytes_ratio: cb_field("repack_bytes_ratio"),
                serving_cb_stale_plan_executes: cb_field("stale_plan_executes"),
                serving_cb_update_failed_requests: cb_field("update_failed_requests"),
                serving_cb_replica_count: cb_field("replica_count"),
                serving_cb_replica_failovers: cb_field("replica_failovers"),
                serving_cb_failover_p99_ms: cb_field("failover_p99_ms"),
                serving_cb_hedge_wins: cb_field("hedge_wins"),
                serving_cb_degraded_shed_rate: cb_field("degraded_shed_rate"),
                serving_cb_replica_failed_requests: cb_field("replica_failed_requests"),
                serving_decode_tokens_s: decode_field("decode_tokens_s"),
                serving_decode_token_p50_ms: decode_field("token_p50_ms"),
                serving_decode_token_p99_ms: decode_field("token_p99_ms"),
                serving_decode_mean_interleave_width: decode_field("mean_interleave_width"),
                serving_decode_evictions: decode_field("evictions"),
                serving_decode_resumed: decode_field("resumed"),
                serving_decode_lost_tokens: decode_field("lost_tokens"),
                serving_decode_bit_identical: decode
                    .and_then(|d| d.get("bit_identical"))
                    .and_then(Json::as_bool),
                serving_decode_serial_tokens_s: decode_field("serial_tokens_s"),
                conv_input_bytes_read: conv_field("input_bytes_read"),
                conv_im2col_bytes_avoided: conv_field("im2col_bytes_avoided"),
                conv_implicit_images_s: conv_field("implicit_images_s"),
                conv_im2col_images_s: conv_field("im2col_images_s"),
                conv_speedup: conv_field("speedup"),
                conv_bit_identical: conv
                    .and_then(|c| c.get("bit_identical"))
                    .and_then(Json::as_bool),
                conv_im2col_bytes_on_implicit: conv_field("im2col_bytes_on_implicit"),
            });
        }
    }
    Some(BenchReport {
        schema_version,
        threads,
        git_rev,
        kernels,
        models,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact shape of the v1 document this repository shipped before the
    /// plan/execute split (two rows kept for brevity).
    const V1_SAMPLE: &str = r#"{
  "schema": "shfl-bw-repro/bench-kernels/v1",
  "threads": 1,
  "results": [
    {"kernel": "dense_gemm_execute", "shape": "1024x1024x1024", "naive_ms": 3313.742, "blocked_ms": 125.607, "speedup": 26.38, "bit_identical": true, "headline": true},
    {"kernel": "cuda_core_spmm_execute", "shape": "512x512x128", "naive_ms": 1.509, "blocked_ms": 1.676, "speedup": 0.90, "bit_identical": true, "headline": false}
  ]
}"#;

    #[test]
    fn parses_the_v1_schema_without_prepared_columns() {
        let report = parse_report(V1_SAMPLE).unwrap();
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.threads, 1);
        assert_eq!(report.git_rev, None);
        assert_eq!(report.kernels.len(), 2);
        assert!(report.models.is_empty());
        let gemm = &report.kernels[0];
        assert_eq!(gemm.kernel, "dense_gemm_execute");
        assert!((gemm.naive_ms - 3313.742).abs() < 1e-9);
        assert_eq!(gemm.plan_build_ms, None);
        assert_eq!(gemm.prepared_ms, None);
        assert!(gemm.headline);
        assert!(!report.kernels[1].headline);
    }

    #[test]
    fn round_trips_the_v2_writer() {
        // A small synthetic run exercises the writer→reader path without the
        // cost of actually benchmarking.
        let run = crate::bench_kernels::BenchRun {
            kernels: vec![crate::bench_kernels::BenchResult {
                kernel: "shfl_bw_spmm_execute".into(),
                shape: "1024x1024x256 V=64 70% sparse".into(),
                naive_ms: 100.0,
                blocked_ms: 8.0,
                plan_build_ms: 2.0,
                prepared_ms: 4.0,
                bit_identical: true,
                headline: true,
            }],
            models: vec![crate::bench_kernels::ModelBenchResult {
                model: "GNMT".into(),
                batch: 4,
                seq_len: 1,
                layers: 6,
                build_ms: 120.0,
                forward_ms: 80.0,
                throughput: 50.0,
                modeled_throughput: 4000.0,
                unit: "tokens/s",
                serving: Some(crate::bench_serving::ServingBenchResult {
                    model: "GNMT".into(),
                    unit: "tokens/s",
                    forwards: 8,
                    hit_rate: 0.975,
                    p50_ms: 10.0,
                    p95_ms: 20.0,
                    p99_ms: 25.0,
                    throughput: 60.0,
                    cold_throughput: 40.0,
                    bit_identical: true,
                    mt_workers: 4,
                    mt_requests: 32,
                    mt_wall_ms: 120.0,
                    panel_segments: 5,
                    panel_sweep_bytes: 4096,
                    panel_bytes_fused: 4096,
                    panel_bytes_segmented: 20480,
                    coalesced_requests: 32,
                    coalesced_wall_ms: 60.0,
                    coalesced_bit_identical: true,
                    continuous: crate::bench_serving::ContinuousBenchResult {
                        layers: 6,
                        requests: 96,
                        window_us: 8_000,
                        windowed_wall_ms: 45.0,
                        zero_wall_ms: 90.0,
                        bit_identical: true,
                        windowed_groups: 30,
                        coalesced_requests: 80,
                        windowed_panel_bytes: 1_000,
                        zero_panel_bytes: 4_000,
                        deadline_p50_ms: 9.0,
                        deadline_p99_ms: 12.0,
                        standard_p99_ms: 20.0,
                        bulk_p50_ms: 18.0,
                        bulk_p99_ms: 30.0,
                        cap_sweep: vec![(256, 45.0)],
                        best_cap: 256,
                        overload_requests: 96,
                        overload_shed: 24,
                        overload_shed_rate: 0.5,
                        overload_deadline_p99_ms: 14.0,
                        overload_bulk_p99_ms: 55.0,
                        update_swaps: 8,
                        update_swap_p99_ms: 3.5,
                        repack_bytes_ratio: 0.125,
                        stale_plan_executes: 2,
                        update_failed_requests: 0,
                        replica_count: 3,
                        replica_requests: 72,
                        replica_failovers: 5,
                        failover_p99_ms: 2.25,
                        hedge_wins: 4,
                        degraded_shed_rate: 1.0,
                        replica_failed_requests: 0,
                        replica_deadline_p99_ms: 11.0,
                        replica_bulk_p99_ms: 28.0,
                    },
                    decode: Some(crate::bench_serving::DecodeBenchResult {
                        sessions: 32,
                        steps: 64,
                        tokens: 2048,
                        wall_ms: 400.0,
                        tokens_s: 5120.0,
                        token_p50_ms: 5.0,
                        token_p99_ms: 9.0,
                        mean_interleave_width: 24.5,
                        evictions: 4,
                        resumed: 4,
                        lost_tokens: 0,
                        bit_identical: true,
                        serial_sessions: 4,
                        serial_wall_ms: 200.0,
                        serial_tokens_s: 1280.0,
                    }),
                }),
                conv_implicit: Some(crate::bench_kernels::ConvImplicitBench {
                    input_bytes_read: 1_000,
                    im2col_bytes_avoided: 9_000,
                    implicit_ms: 10.0,
                    im2col_ms: 25.0,
                    implicit_images_s: 100.0,
                    im2col_images_s: 40.0,
                    bit_identical: true,
                    im2col_bytes_on_implicit: 0,
                }),
            }],
        };
        let json = crate::bench_kernels::to_json(&run);
        let report = parse_report(&json).unwrap();
        assert_eq!(report.schema_version, 2);
        assert!(report.git_rev.is_some());
        assert_eq!(report.kernels.len(), 1);
        let k = &report.kernels[0];
        assert_eq!(k.prepared_ms, Some(4.0));
        assert_eq!(k.plan_build_ms, Some(2.0));
        assert!((k.speedup - 12.5).abs() < 1e-9);
        assert_eq!(report.models.len(), 1);
        let m = &report.models[0];
        assert_eq!(m.model, "GNMT");
        assert_eq!(m.unit, "tokens/s");
        assert_eq!(m.serving_hit_rate, Some(0.975));
        assert_eq!(m.serving_throughput, Some(60.0));
        assert_eq!(m.serving_cold_throughput, Some(40.0));
        assert_eq!(m.serving_bit_identical, Some(true));
        assert_eq!(m.serving_panel_bytes_fused, Some(4096.0));
        assert_eq!(m.serving_panel_bytes_segmented, Some(20480.0));
        assert_eq!(m.serving_coalesced_wall_ms, Some(60.0));
        assert_eq!(m.serving_mt_wall_ms, Some(120.0));
        assert_eq!(m.serving_cb_windowed_wall_ms, Some(45.0));
        assert_eq!(m.serving_cb_zero_wall_ms, Some(90.0));
        assert_eq!(m.serving_cb_bit_identical, Some(true));
        assert_eq!(m.serving_cb_deadline_p99_ms, Some(12.0));
        assert_eq!(m.serving_cb_bulk_p99_ms, Some(30.0));
        assert_eq!(m.serving_cb_best_cap, Some(256.0));
        assert_eq!(m.serving_cb_overload_shed, Some(24.0));
        assert_eq!(m.serving_cb_overload_shed_rate, Some(0.5));
        assert_eq!(m.serving_cb_overload_deadline_p99_ms, Some(14.0));
        assert_eq!(m.serving_cb_overload_bulk_p99_ms, Some(55.0));
        assert_eq!(m.serving_cb_update_swaps, Some(8.0));
        assert_eq!(m.serving_cb_update_swap_p99_ms, Some(3.5));
        assert_eq!(m.serving_cb_repack_bytes_ratio, Some(0.125));
        assert_eq!(m.serving_cb_stale_plan_executes, Some(2.0));
        assert_eq!(m.serving_cb_update_failed_requests, Some(0.0));
        assert_eq!(m.serving_cb_replica_count, Some(3.0));
        assert_eq!(m.serving_cb_replica_failovers, Some(5.0));
        assert_eq!(m.serving_cb_failover_p99_ms, Some(2.25));
        assert_eq!(m.serving_cb_hedge_wins, Some(4.0));
        assert_eq!(m.serving_cb_degraded_shed_rate, Some(1.0));
        assert_eq!(m.serving_cb_replica_failed_requests, Some(0.0));
        assert_eq!(m.serving_decode_tokens_s, Some(5120.0));
        assert_eq!(m.serving_decode_token_p50_ms, Some(5.0));
        assert_eq!(m.serving_decode_token_p99_ms, Some(9.0));
        assert_eq!(m.serving_decode_mean_interleave_width, Some(24.5));
        assert_eq!(m.serving_decode_evictions, Some(4.0));
        assert_eq!(m.serving_decode_resumed, Some(4.0));
        assert_eq!(m.serving_decode_lost_tokens, Some(0.0));
        assert_eq!(m.serving_decode_bit_identical, Some(true));
        assert_eq!(m.serving_decode_serial_tokens_s, Some(1280.0));
        assert_eq!(m.conv_input_bytes_read, Some(1000.0));
        assert_eq!(m.conv_im2col_bytes_avoided, Some(9000.0));
        assert_eq!(m.conv_implicit_images_s, Some(100.0));
        assert_eq!(m.conv_im2col_images_s, Some(40.0));
        assert_eq!(m.conv_speedup, Some(2.5));
        assert_eq!(m.conv_bit_identical, Some(true));
        assert_eq!(m.conv_im2col_bytes_on_implicit, Some(0.0));
    }

    #[test]
    fn model_rows_without_serving_parse_with_absent_fields() {
        let json = r#"{
  "schema": "shfl-bw-repro/bench-kernels/v2",
  "threads": 1,
  "results": [],
  "models": [
    {"model": "Transformer", "batch": 4, "seq_len": 16, "layers": 11, "build_ms": 1.0, "forward_ms": 2.0, "throughput": 3.0, "modeled_throughput": 4.0, "unit": "tokens/s"}
  ]
}"#;
        let report = parse_report(json).unwrap();
        assert_eq!(report.models.len(), 1);
        assert_eq!(report.models[0].serving_hit_rate, None);
        assert_eq!(report.models[0].serving_bit_identical, None);
        assert_eq!(report.models[0].serving_cb_windowed_wall_ms, None);
        assert_eq!(report.models[0].serving_cb_best_cap, None);
        assert_eq!(report.models[0].serving_cb_overload_shed, None);
        assert_eq!(report.models[0].serving_cb_overload_shed_rate, None);
        assert_eq!(report.models[0].serving_cb_update_swaps, None);
        assert_eq!(report.models[0].serving_cb_repack_bytes_ratio, None);
        assert_eq!(report.models[0].serving_cb_replica_count, None);
        assert_eq!(report.models[0].serving_cb_replica_failovers, None);
        assert_eq!(report.models[0].serving_cb_degraded_shed_rate, None);
        assert_eq!(report.models[0].serving_decode_tokens_s, None);
        assert_eq!(report.models[0].serving_decode_bit_identical, None);
        assert_eq!(report.models[0].serving_decode_lost_tokens, None);
        assert_eq!(report.models[0].conv_speedup, None);
        assert_eq!(report.models[0].conv_bit_identical, None);
        assert_eq!(report.models[0].conv_im2col_bytes_on_implicit, None);
    }

    #[test]
    fn rejects_malformed_and_unknown_documents() {
        assert!(parse_report("not json").is_none());
        assert!(parse_report("{\"schema\": \"something-else\", \"threads\": 1}").is_none());
        assert!(parse_json("{\"a\": [1, 2,]}").is_none());
        assert!(parse_json("{} trailing").is_none());
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let doc = parse_json(r#"{"s": "a\"b\\c\nd", "arr": [1, -2.5, 3e2, true, null], "o": {}}"#)
            .unwrap();
        assert_eq!(doc.get("s").unwrap().as_str().unwrap(), "a\"b\\c\nd");
        let arr = doc.get("arr").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64().unwrap(), -2.5);
        assert_eq!(arr[2].as_f64().unwrap(), 300.0);
        assert_eq!(arr[3].as_bool(), Some(true));
        assert_eq!(arr[4], Json::Null);
        assert_eq!(parse_json(r#""A""#).unwrap().as_str().unwrap(), "A");
    }
}
