//! Wall-clock serving benchmark: bucketed plan-cache serving vs per-request
//! cold plan builds under mixed request sizes.
//!
//! `repro --bench-serving` drives each model's [`ModelEngine`] through a
//! deterministic **mixed-batch request trace** (the serving reality the
//! single-bucket engine of PR 2 could not handle):
//!
//! 1. **warmup** — each distinct warm batch runs once, populating the plan
//!    cache with the trace's N-buckets (steady-state serving; compulsory
//!    misses amortise over a server's lifetime and are excluded from the
//!    timed window),
//! 2. **timed trace** — forwards at batch sizes the warmup never ran, all
//!    mapping onto already-cached buckets: per-forward latency percentiles,
//!    aggregate tokens-or-images/s, and the steady-state plan-cache hit rate
//!    (the `--bench-serving` gate fails on a miss-rate regression, which is
//!    what a plan-keying bug looks like),
//! 3. **cold trace** — the same forwards with a fresh exact-width plan built
//!    per layer per request ([`ModelEngine::forward_cold`]) — serving without
//!    the bucketed cache,
//! 4. **bit-identity** — bucketed outputs equal the cold exact-width oracle
//!    bit for bit on a subset of shapes, and
//! 5. **multi-stream fan-out** — the timed trace's linear-layer requests
//!    served through [`Scheduler`] worker threads over the shared engine
//!    (recorded, not gated: on a single-core host the fan-out cannot beat
//!    sequential service),
//! 6. **panel re-streaming probe** — a ≥4-segment request served once on the
//!    fused multi-segment path and once on the per-segment baseline, with
//!    the engine's packed-panel byte counter read around each: the fused
//!    sweep must stay within 1.5× of the single-sweep lower bound (it is
//!    exactly 1.0×) while the baseline pays one sweep per segment — the
//!    re-streaming reduction this stack exists for, gated deterministically
//!    in both smoke and full mode, and
//! 7. **cross-request coalescing** — the fan-out trace served again through
//!    a coalescing scheduler (same-layer requests column-concatenated into
//!    shared fused executes): outputs must be bit-identical to the
//!    uncoalesced fan-out, and the coalesced wall-clock must not lose to the
//!    uncoalesced one (full mode; smoke allows 10% noise), and
//! 8. **continuous batching** — the model's linear layers served through the
//!    [`shfl_serving::server::Server`]: requests submitted **one at a time**
//!    with Poisson-ish staggered gaps and mixed priority classes
//!    (deadline / standard / bulk), once through a server holding a nonzero
//!    admission window (SLO-aware dispatch, cross-arrival coalescing) and
//!    once through the zero-window uncoalesced baseline (the old
//!    dispatch-immediately shape). Gated on bit-identity against per-request
//!    cold execution in every mode; in full mode also on the windowed
//!    configuration coalescing across arrivals (counter-verified via
//!    panel bytes and group stats), on aggregate throughput not losing to
//!    the zero-window baseline, and on deadline-class p99 staying below
//!    bulk-class p99 under the same load. A coalescing-cap sweep rides along
//!    and logs the best cap for this box. An **overload** sub-trace replays
//!    the mix gap-free against one worker with a small bulk-class bound:
//!    arrivals far outrun capacity, excess bulk sheds at the door (never any
//!    other class) while admitted bulk still completes, and the gates check
//!    a nonzero bulk shed rate in every mode plus, in full mode, deadline
//!    p99 staying strictly under bulk p99 on the overloaded server, and
//! 9. **live weight updates** — ≥ 8 same-pattern magnitude swaps (alternating
//!    a scaled republish with a rollback, so the engine's weights end exactly
//!    where they started) published while mixed-class traffic is in flight
//!    against the updated layer: the sub-trace records the swap-latency p99,
//!    the delta-re-pack byte ratio (payload bytes rewritten over full-rebuild
//!    bytes; strictly below 1 by construction), and the stale-plan execute
//!    count (in-flight snapshots finishing on a superseded version). Gated in
//!    every mode on swaps never failing a request and on the byte ratio
//!    landing strictly inside `(0, 1)`, and
//! 10. **replicated serving** — three data-parallel replicas of the engine
//!     behind one [`shfl_serving::server::Server`], driven through scripted
//!     replica loss via the production admin API: the home replica of the
//!     trace's first layer is killed mid-submission (every group homed there
//!     fails over in ring order), then two of three replicas go down so Bulk
//!     sheds under graceful degradation while Deadline and Standard keep
//!     serving. Hedged dispatch runs on every Deadline group. Gated in every
//!     mode on zero accepted tickets failing with anything but the typed
//!     degraded-mode shed (failed-over responses must stay bit-identical to
//!     the single-engine oracle), at least one failover, and a nonzero
//!     degraded shed rate; in full mode also on the replicated deadline p99
//!     staying at or under the bulk p99.

use gpu_sim::GpuArch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shfl_core::formats::{ShflBwMatrix, VectorWiseMatrix};
use shfl_core::matrix::DenseMatrix;
use shfl_core::slo::{SloClass, SloKind};
use shfl_models::engine::{EngineConfig, ModelEngine};
use shfl_models::DnnModel;
use shfl_serving::policy::{Fifo, SloAware};
use shfl_serving::replica::{ReplicaConfig, ReplicaSet};
use shfl_serving::scheduler::{Request, Scheduler};
use shfl_serving::server::{Server, ServerConfig, SubmitError};
use shfl_serving::{decode_oracle, DecodeToken, ServingError};
use std::sync::Arc;
use std::time::Instant;

/// Nearest-rank percentile of an unsorted sample (`q` in `[0, 1]`).
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Serving-trace numbers of one model.
#[derive(Debug, Clone)]
pub struct ServingBenchResult {
    /// Model name (`Transformer`, `GNMT`, `ResNet50`).
    pub model: String,
    /// Throughput unit: `"tokens/s"` or `"images/s"`.
    pub unit: &'static str,
    /// Timed forwards in the trace.
    pub forwards: usize,
    /// Steady-state plan-cache hit rate over the timed trace.
    pub hit_rate: f64,
    /// Median per-forward latency (ms) of the bucketed trace.
    pub p50_ms: f64,
    /// 95th-percentile per-forward latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile per-forward latency (ms).
    pub p99_ms: f64,
    /// Aggregate items/s of the bucketed timed trace.
    pub throughput: f64,
    /// Aggregate items/s of the same trace with per-request cold plan builds.
    pub cold_throughput: f64,
    /// Whether bucketed outputs were bit-identical to the cold exact-width
    /// oracle on the checked shapes.
    pub bit_identical: bool,
    /// Worker threads of the multi-stream sub-trace.
    pub mt_workers: usize,
    /// Linear-layer requests fanned across the workers.
    pub mt_requests: usize,
    /// Wall-clock of the fanned sub-trace in ms (0 when no linear layers).
    pub mt_wall_ms: f64,
    /// Bucket segments of the panel-probe width (≥ 4 by construction).
    pub panel_segments: usize,
    /// Packed-panel bytes of **one** sweep over the probe layer's weights —
    /// the lower bound any execution of that layer pays at least once.
    pub panel_sweep_bytes: u64,
    /// Packed-panel bytes the fused multi-segment execute streamed for the
    /// probe request (one sweep).
    pub panel_bytes_fused: u64,
    /// Packed-panel bytes the per-segment baseline streamed for the same
    /// request (one sweep per segment).
    pub panel_bytes_segmented: u64,
    /// Requests of the coalesced sub-trace (same requests as `mt_requests`).
    pub coalesced_requests: usize,
    /// Wall-clock of the coalescing scheduler over the fan-out requests, ms.
    pub coalesced_wall_ms: f64,
    /// Whether the coalesced responses were bit-identical to the
    /// uncoalesced fan-out responses.
    pub coalesced_bit_identical: bool,
    /// Continuous-batching server sub-trace (staggered arrivals, mixed
    /// priority classes, windowed vs zero-window).
    pub continuous: ContinuousBenchResult,
    /// Decode-session sub-trace: iteration-level interleaved autoregressive
    /// decode vs one-session-at-a-time serial decode (GNMT only — the
    /// paper's latency-bound recurrent decode workload).
    pub decode: Option<DecodeBenchResult>,
}

/// Numbers of the decode-session sub-trace: many concurrent autoregressive
/// sequences decoded through [`shfl_serving::SessionManager`]'s
/// iteration-level interleave loop (every live sequence contributes one
/// column per round; same-stage columns coalesce into one fused sweep),
/// with mid-trace eviction pressure and resumption, against a serial
/// one-session-at-a-time baseline on the same engine.
#[derive(Debug, Clone)]
pub struct DecodeBenchResult {
    /// Concurrent decode sessions of the interleaved run.
    pub sessions: usize,
    /// Decode steps per session.
    pub steps: usize,
    /// Tokens streamed by the interleaved run (`sessions × steps` when none
    /// were lost).
    pub tokens: u64,
    /// Open→fully-drained wall of the interleaved run, ms.
    pub wall_ms: f64,
    /// Aggregate decode throughput of the interleaved run, tokens/s.
    pub tokens_s: f64,
    /// Median per-token service time (the interleave round that produced the
    /// token), ms.
    pub token_p50_ms: f64,
    /// 99th-percentile per-token service time, ms.
    pub token_p99_ms: f64,
    /// Mean columns per sweep across the run (> 1 proves the sequences
    /// genuinely coalesced).
    pub mean_interleave_width: f64,
    /// Sessions evicted under the scripted mid-trace pressure.
    pub evictions: u64,
    /// Evicted sessions resumed (must equal `evictions`).
    pub resumed: u64,
    /// Accepted tokens that never arrived (`sessions × steps − tokens`; the
    /// zero-loss gate).
    pub lost_tokens: u64,
    /// Whether the checked sessions (one evicted-and-resumed, one
    /// untouched) matched the cold-oracle decode bit for bit.
    pub bit_identical: bool,
    /// Sessions of the serial baseline (each opened alone and fully drained
    /// before the next opens — interleave width pinned at 1).
    pub serial_sessions: usize,
    /// Wall of the serial baseline, ms.
    pub serial_wall_ms: f64,
    /// Per-token throughput of the serial baseline, tokens/s.
    pub serial_tokens_s: f64,
}

impl DecodeBenchResult {
    /// Interleaved-over-serial decode throughput ratio (the ≥ 2× full-mode
    /// gate).
    pub fn interleave_speedup(&self) -> f64 {
        if self.serial_tokens_s <= 0.0 {
            return 0.0;
        }
        self.tokens_s / self.serial_tokens_s
    }
}

/// Numbers of the continuous-batching server sub-trace of one model.
#[derive(Debug, Clone)]
pub struct ContinuousBenchResult {
    /// Distinct linear layers the trace submits against.
    pub layers: usize,
    /// Requests submitted (one at a time) per server run.
    pub requests: usize,
    /// Admission window of the windowed configuration, µs.
    pub window_us: u64,
    /// First-submit→drained wall of the windowed SLO-aware server, ms.
    pub windowed_wall_ms: f64,
    /// Same trace through the zero-window uncoalesced baseline, ms.
    pub zero_wall_ms: f64,
    /// Whether windowed responses were bit-identical to per-request cold
    /// execution of the same operands.
    pub bit_identical: bool,
    /// Ready groups the windowed server dispatched (< `requests` when
    /// arrivals coalesced).
    pub windowed_groups: u64,
    /// Requests the windowed server served inside shared (coalesced)
    /// executes.
    pub coalesced_requests: u64,
    /// Packed-panel bytes the windowed run streamed.
    pub windowed_panel_bytes: u64,
    /// Packed-panel bytes the zero-window baseline streamed on the same
    /// trace.
    pub zero_panel_bytes: u64,
    /// Deadline-class end-to-end latency percentiles, ms.
    pub deadline_p50_ms: f64,
    /// Deadline-class p99, ms.
    pub deadline_p99_ms: f64,
    /// Standard-class p99, ms.
    pub standard_p99_ms: f64,
    /// Bulk-class p50, ms.
    pub bulk_p50_ms: f64,
    /// Bulk-class p99, ms.
    pub bulk_p99_ms: f64,
    /// Coalescing-cap sweep: (cap columns, batch wall ms) per candidate
    /// (empty in smoke mode).
    pub cap_sweep: Vec<(usize, f64)>,
    /// The cap with the best batch wall on this box (the layer default when
    /// the sweep was skipped).
    pub best_cap: usize,
    /// Arrivals of the overload sub-trace (the same request mix replayed
    /// gap-free against one capacity-constrained worker).
    pub overload_requests: usize,
    /// Bulk requests shed in the overload sub-trace: door rejections plus
    /// queued evictions. Only bulk is ever shed.
    pub overload_shed: u64,
    /// Shed fraction of the overload trace's bulk arrivals.
    pub overload_shed_rate: f64,
    /// Deadline-class p99 of the overload sub-trace, ms.
    pub overload_deadline_p99_ms: f64,
    /// Bulk-class p99 of the overload sub-trace, ms.
    pub overload_bulk_p99_ms: f64,
    /// Weight swaps published by the live-update sub-trace (scaled
    /// republishes plus rollbacks).
    pub update_swaps: u64,
    /// 99th-percentile swap latency (build + validate + publish), ms.
    pub update_swap_p99_ms: f64,
    /// Delta-re-pack payload bytes over the bytes full rebuilds of the same
    /// plans would have moved (strictly inside `(0, 1)` when any swap took
    /// the delta path).
    pub repack_bytes_ratio: f64,
    /// Serving executes that finished on a snapshot older than the published
    /// version — the no-stop-the-world overlap window made visible.
    pub stale_plan_executes: u64,
    /// Tickets accepted during the update sub-trace that failed (the
    /// zero-downtime gate: must be 0).
    pub update_failed_requests: u64,
    /// Data-parallel replicas of the replicated sub-trace (0 when the model
    /// has no linear layers to serve).
    pub replica_count: usize,
    /// Requests submitted across the replicated sub-trace's two phases.
    pub replica_requests: usize,
    /// Dispatches that left their home replica after the scripted kill.
    pub replica_failovers: u64,
    /// 99th-percentile service time of failed-over dispatches, ms (0 when
    /// nothing failed over).
    pub failover_p99_ms: f64,
    /// Hedged Deadline dispatches whose alternate replica won the race.
    pub hedge_wins: u64,
    /// Bulk fraction shed while only one of three replicas was routable
    /// (graceful degradation; Bulk only).
    pub degraded_shed_rate: f64,
    /// Accepted tickets of the replicated sub-trace that failed with
    /// anything but the typed degraded-mode Bulk shed, or whose response
    /// mismatched the single-engine oracle bits (the replica-loss gate:
    /// must be 0).
    pub replica_failed_requests: u64,
    /// Deadline-class p99 on the replicated server, ms.
    pub replica_deadline_p99_ms: f64,
    /// Bulk-class p99 on the replicated server, ms.
    pub replica_bulk_p99_ms: f64,
}

impl ContinuousBenchResult {
    /// Aggregate-throughput speedup of the windowed configuration over the
    /// zero-window baseline (same submission pattern, so the wall ratio).
    pub fn window_speedup(&self) -> f64 {
        if self.windowed_wall_ms <= 0.0 {
            return 0.0;
        }
        self.zero_wall_ms / self.windowed_wall_ms
    }

    /// Panel-byte reduction of windowed coalescing over the zero-window
    /// baseline.
    pub fn panel_reduction(&self) -> f64 {
        if self.windowed_panel_bytes == 0 {
            return 0.0;
        }
        self.zero_panel_bytes as f64 / self.windowed_panel_bytes as f64
    }
}

impl ServingBenchResult {
    /// Bucketed-over-cold aggregate throughput ratio.
    pub fn speedup_vs_cold(&self) -> f64 {
        if self.cold_throughput <= 0.0 {
            return 0.0;
        }
        self.throughput / self.cold_throughput
    }

    /// Panel re-streaming reduction of the fused sweep: segmented-baseline
    /// bytes over fused bytes (≈ the segment count).
    pub fn panel_restream_ratio(&self) -> f64 {
        if self.panel_bytes_fused == 0 {
            return 0.0;
        }
        self.panel_bytes_segmented as f64 / self.panel_bytes_fused as f64
    }

    /// Coalesced-over-uncoalesced wall-clock speedup on the fan-out trace.
    pub fn coalescing_speedup(&self) -> f64 {
        if self.coalesced_wall_ms <= 0.0 {
            return 0.0;
        }
        self.mt_wall_ms / self.coalesced_wall_ms
    }
}

/// The warmup and timed batch mixes of one model's trace. Timed batches are
/// chosen so every width maps onto a bucket the warmup already cached — but
/// through *different* widths, so a plan-keying regression (exact-width
/// keying instead of bucket keying) shows up as a miss-rate spike.
fn trace_batches(model: DnnModel, quick: bool) -> (Vec<usize>, Vec<usize>) {
    match (model, quick) {
        (DnnModel::Transformer, true) => (vec![1, 2, 4], vec![1, 3, 2, 4]),
        // seq_len 16: timed widths 48/80/96/112 land in the 64- and
        // 128-buckets warmed by batches 4 and 8.
        (DnnModel::Transformer, false) => (
            vec![1, 2, 4, 8],
            vec![1, 3, 2, 6, 4, 8, 5, 7, 3, 1, 6, 2, 8, 4, 7, 5],
        ),
        // GNMT serves N = batch directly; 10 and 20 land in the 16- and
        // 32-buckets warmed by 12 and 24.
        (DnnModel::Gnmt, true) => (vec![1, 2, 4], vec![1, 3, 2, 4]),
        (DnnModel::Gnmt, false) => (
            vec![1, 2, 4, 8, 12, 24],
            vec![1, 3, 2, 6, 4, 8, 10, 20, 3, 1, 6, 2, 20, 4, 10, 8],
        ),
        // ResNet's unfolded conv operands are thousands of columns wide —
        // most lookups are full `max_bucket` segments shared across batches,
        // but each batch size also leaves a per-layer tail bucket that no
        // other batch predicts, so the warm set covers every timed batch
        // (the unseen-width keying regression is caught by the GEMM models).
        (DnnModel::Resnet50, true) => (vec![1, 2], vec![1, 2]),
        (DnnModel::Resnet50, false) => (vec![1, 2, 3, 4], vec![1, 3, 2, 4, 3, 1, 4, 2]),
    }
}

/// Runs the serving trace for every model. `quick` shrinks the trace and the
/// engine configuration (CI smoke mode).
pub fn run(quick: bool) -> Vec<ServingBenchResult> {
    run_with_workers(quick, None)
}

/// Same as [`run`], with an override for the replicated sub-trace's server
/// worker count (`None` keeps the default of 2) — the `repro --workers`
/// smoke matrix drives the replicated tier at varied parallelism through
/// this.
pub fn run_with_workers(quick: bool, workers: Option<usize>) -> Vec<ServingBenchResult> {
    let arch = GpuArch::v100();
    let cfg = if quick {
        EngineConfig::smoke()
    } else {
        EngineConfig::paper_default()
    };
    DnnModel::all()
        .into_iter()
        .map(|model| run_model(model, &arch, &cfg, quick, workers))
        .collect()
}

fn run_model(
    model: DnnModel,
    arch: &GpuArch,
    cfg: &EngineConfig,
    quick: bool,
    workers: Option<usize>,
) -> ServingBenchResult {
    let engine = ModelEngine::build(model, arch, cfg).expect("engine builds");
    let seq = cfg.seq_len;
    let (warm, timed) = trace_batches(model, quick);

    // Warmup: populate the trace's buckets (untimed, excluded from the rate).
    for &batch in &warm {
        engine.forward(batch, seq).expect("warmup forward");
    }
    let warm_stats = engine.cache_stats();

    // Timed bucketed trace vs the cold trace (identical requests, exact-width
    // plan built per layer per forward). The two are compared against each
    // other by the full-mode throughput gate and a shared box drifts by tens
    // of percent between trace sections, so in full mode both run twice,
    // interleaved, keeping each forward's best — the same best-of policy as
    // the kernel benchmarks. The hit-rate window is measured around the first
    // bucketed pass only (repeats add pure hits and would flatter the rate).
    let reps = if quick { 1 } else { 2 };
    let mut latencies = vec![f64::MAX; timed.len()];
    let mut items = 0.0;
    let mut bucketed_ms = 0.0;
    let mut cold_ms = 0.0;
    let mut unit = "items/s";
    let mut hit_rate = 1.0;
    for rep in 0..reps {
        let mut pass_ms = 0.0;
        for (i, &batch) in timed.iter().enumerate() {
            let report = engine.forward(batch, seq).expect("bucketed forward");
            latencies[i] = latencies[i].min(report.forward_ms);
            pass_ms += report.forward_ms;
            if rep == 0 {
                items += report.items_per_forward;
            }
            unit = report.unit;
        }
        bucketed_ms = if rep == 0 {
            pass_ms
        } else {
            bucketed_ms.min(pass_ms)
        };
        if rep == 0 {
            let steady = engine.cache_stats();
            let lookups = (steady.hits - warm_stats.hits) + (steady.misses - warm_stats.misses);
            hit_rate = if lookups == 0 {
                1.0
            } else {
                (steady.hits - warm_stats.hits) as f64 / lookups as f64
            };
        }
        let mut pass_ms = 0.0;
        for &batch in &timed {
            let report = engine.forward_cold(batch, seq).expect("cold forward");
            pass_ms += report.forward_ms;
        }
        cold_ms = if rep == 0 {
            pass_ms
        } else {
            cold_ms.min(pass_ms)
        };
    }

    // Bit-identity of the bucketed path against the cold exact-width oracle.
    let check_batches: &[usize] = if quick { &timed[..1] } else { &timed[..2] };
    let mut bit_identical = true;
    for &batch in check_batches {
        let bucketed = engine
            .forward_outputs(batch, seq)
            .expect("bucketed outputs");
        let cold = engine
            .forward_outputs_cold(batch, seq)
            .expect("cold outputs");
        bit_identical &= bucketed.len() == cold.len()
            && bucketed.iter().zip(cold.iter()).all(|(b, c)| {
                b.shape() == c.shape()
                    && b.as_slice()
                        .iter()
                        .zip(c.as_slice().iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            });
    }

    // Multi-stream fan-out over the linear layers (plans are shared; on a
    // multi-core host the workers overlap, on a single core they interleave),
    // then the same requests again through the coalescing scheduler:
    // same-layer requests collapse into shared fused executes, and the
    // scattered outputs must match the fan-out bit for bit.
    let gemm_layers = engine.gemm_layer_indices();
    let mt_workers = 4;
    let mut mt_requests = 0;
    let mut mt_wall_ms = 0.0;
    let mut coalesced_requests = 0;
    let mut coalesced_wall_ms = 0.0;
    let mut coalesced_bit_identical = true;
    if !gemm_layers.is_empty() {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5e41);
        let mut requests = Vec::new();
        let inventory_batches = if quick {
            &timed[..timed.len().min(4)]
        } else {
            &timed[..]
        };
        for &batch in inventory_batches {
            // The workload inventory is the single source of truth for each
            // layer's serving width at this batch (layer order matches the
            // engine's registration order).
            let inventory = shfl_models::model_workload(model, batch, seq);
            for &layer in &gemm_layers {
                let (_, n, k) = inventory[layer].kind.gemm_shape();
                requests.push(Request {
                    id: requests.len() as u64,
                    layer,
                    activations: DenseMatrix::random(&mut rng, k, n),
                });
            }
        }
        mt_requests = requests.len();
        coalesced_requests = requests.len();
        // Steady-state comparison: the fan-out's buckets were warmed by the
        // timed trace, but the coalesced group widths land on *new* buckets
        // (a column-concatenated group is wider than any single request) —
        // warm those untimed too, exactly like the trace warmup excludes
        // compulsory plan builds from the timed window.
        let warm_responses =
            Scheduler::coalescing(mt_workers).serve(engine.serving(), requests.clone());
        assert!(warm_responses.iter().all(|r| r.result.is_ok()));
        // Interleaved best-of-2 for each scheduler: the walls are compared
        // against each other and a shared single-core box drifts by tens of
        // percent between passes, so alternating the passes and keeping each
        // side's best cancels most of the drift.
        let mut uncoalesced_walls = Vec::new();
        let mut coalesced_walls = Vec::new();
        let mut responses = Vec::new();
        let mut coalesced = Vec::new();
        for _ in 0..2 {
            let start = Instant::now();
            responses = Scheduler::new(mt_workers).serve(engine.serving(), requests.clone());
            uncoalesced_walls.push(start.elapsed().as_secs_f64() * 1e3);
            assert!(
                responses.iter().all(|r| r.result.is_ok()),
                "multi-stream trace requests are well-formed"
            );
            let start = Instant::now();
            coalesced = Scheduler::coalescing(mt_workers).serve(engine.serving(), requests.clone());
            coalesced_walls.push(start.elapsed().as_secs_f64() * 1e3);
        }
        mt_wall_ms = uncoalesced_walls.iter().copied().fold(f64::MAX, f64::min);
        coalesced_wall_ms = coalesced_walls.iter().copied().fold(f64::MAX, f64::min);
        coalesced_bit_identical = responses.len() == coalesced.len()
            && responses
                .iter()
                .zip(coalesced.iter())
                .all(|(a, b)| match (&a.result, &b.result) {
                    (Ok(x), Ok(y)) => {
                        x.shape() == y.shape()
                            && x.as_slice()
                                .iter()
                                .zip(y.as_slice().iter())
                                .all(|(p, q)| p.to_bits() == q.to_bits())
                    }
                    _ => false,
                });
    }

    // Panel re-streaming probe: a ≥4-segment request on the cheapest linear
    // layer, served fused (one panel sweep) and per-segment (one sweep per
    // segment), with the engine's panel-byte counter read around each.
    let serving = engine.serving();
    let probe_layer = gemm_layers
        .iter()
        .copied()
        .min_by_key(|&l| {
            serving.layer_m(l).unwrap_or(usize::MAX) * serving.layer_k(l).unwrap_or(usize::MAX)
        })
        .unwrap_or(0);
    let probe_policy = serving.layer_policy(probe_layer).expect("registered layer");
    let probe_n = probe_policy.max_bucket() * 4 + 3;
    let probe_segments = probe_policy.segments(probe_n);
    let panel_segments = probe_segments.len();
    let panel_sweep_bytes = serving
        .layer_panel_sweep_bytes(probe_layer)
        .expect("probe plan builds");
    let probe_k = serving.layer_k(probe_layer).expect("registered layer");
    let mut probe_rng = StdRng::seed_from_u64(cfg.seed ^ 0x9a31);
    let probe_acts = DenseMatrix::random(&mut probe_rng, probe_k, probe_n);
    let before = serving.panel_bytes_read();
    let fused_out = serving
        .execute(probe_layer, &probe_acts)
        .expect("fused probe executes");
    let panel_bytes_fused = serving.panel_bytes_read() - before;
    let before = serving.panel_bytes_read();
    let segmented_out = serving
        .execute_unfused(probe_layer, &probe_acts)
        .expect("segmented probe executes");
    let panel_bytes_segmented = serving.panel_bytes_read() - before;
    assert_eq!(
        fused_out, segmented_out,
        "fused and per-segment probe outputs must be identical"
    );

    let continuous = run_continuous(&engine, model, cfg, quick, workers);

    // Decode-session sub-trace on GNMT only: the paper's latency-bound
    // recurrent decode workload, where iteration-level interleaving is the
    // whole game. (Transformer decode works — the unit suites cover it —
    // but its 24-stage step would double the trace's wall for the same
    // interleave evidence.) Runs after the update sub-trace, whose
    // alternating republish/rollback swaps leave the weights bit-exact.
    let decode = if model == DnnModel::Gnmt {
        run_decode(&engine, quick)
    } else {
        None
    };

    ServingBenchResult {
        model: model.name().to_string(),
        unit,
        forwards: timed.len(),
        hit_rate,
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        throughput: if bucketed_ms > 0.0 {
            items / (bucketed_ms / 1e3)
        } else {
            0.0
        },
        cold_throughput: if cold_ms > 0.0 {
            items / (cold_ms / 1e3)
        } else {
            0.0
        },
        bit_identical,
        mt_workers,
        mt_requests,
        mt_wall_ms,
        panel_segments,
        panel_sweep_bytes,
        panel_bytes_fused,
        panel_bytes_segmented,
        coalesced_requests,
        coalesced_wall_ms,
        coalesced_bit_identical,
        continuous,
        decode,
    }
}

/// The decode-session sub-trace: `sessions` concurrent autoregressive
/// sequences opened against one server (mixed per-token Deadline / Bulk
/// classes), streamed to completion through the manager's iteration-level
/// interleave loop, with `evict_count` sessions evicted mid-sequence and
/// resumed — then a serial baseline decoding sessions strictly one at a
/// time on a fresh server over the same engine. Bit-identity is checked
/// against [`decode_oracle`] (cold exact-width executes) on one
/// evicted-and-resumed session and one untouched session — the exhaustive
/// all-interleavings check lives in the serving crate's property tests.
fn run_decode(engine: &ModelEngine, quick: bool) -> Option<DecodeBenchResult> {
    let model = engine.decode_model()?;
    let (sessions, steps, evict_count, serial_sessions) =
        if quick { (8, 6, 2, 2) } else { (32, 64, 4, 4) };
    let class_of = |i: usize| {
        if i.is_multiple_of(2) {
            // A whole-sequence deadline split into per-token budgets.
            SloClass::Deadline {
                deadline_us: 4_000_000,
            }
            .per_token(steps)
        } else {
            SloClass::Bulk
        }
    };

    let server = engine.server(
        ServerConfig::new()
            .with_workers(2)
            .with_session_capacity(sessions * 2)
            .with_policy(Arc::new(SloAware)),
    );
    let start = Instant::now();
    let mut handles: Vec<_> = (0..sessions)
        .map(|i| {
            server
                .open_session(
                    Arc::clone(&model),
                    engine.decode_prompt(i as u64),
                    class_of(i),
                    steps,
                )
                .expect("session tier sized to the trace")
        })
        .collect();
    let mut collected: Vec<Vec<DecodeToken>> = vec![Vec::new(); sessions];

    // Mid-trace eviction pressure: consume the victim's stream until it is
    // a third of the way through (blocking consumption keeps us in step
    // with production), then evict it. Resumption happens in the drain
    // below when the typed error surfaces.
    for v in 0..evict_count {
        let ticket = handles[v].ticket();
        while collected[v].len() < steps / 3 {
            match ticket.next_token() {
                Ok(Some(tok)) => collected[v].push(tok),
                Ok(None) => break,
                Err(e) => panic!("decode trace failed before eviction: {e}"),
            }
        }
        server.evict_session(handles[v].id());
    }

    // Drain every session to completion; an evicted stream resumes under
    // its old id and continues exactly where it stopped.
    for i in 0..sessions {
        loop {
            match handles[i].ticket().next_token() {
                Ok(Some(tok)) => collected[i].push(tok),
                Ok(None) => break,
                Err(ServingError::Evicted { session }) => {
                    handles[i] = server
                        .resume_session(session)
                        .expect("evicted decode session resumes");
                }
                Err(e) => panic!("decode trace failed: {e}"),
            }
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = server.session_stats();
    server.shutdown();

    let tokens: u64 = collected.iter().map(|c| c.len() as u64).sum();
    let lost_tokens = (sessions * steps) as u64 - tokens.min((sessions * steps) as u64);
    let token_ms: Vec<f64> = collected
        .iter()
        .flat_map(|c| c.iter().map(|t| t.service_ms))
        .collect();

    // Bit-identity spot check against the cold oracle: session 0 crossed an
    // evict/resume cycle, the last session never did.
    let serving = engine.serving();
    let mut bit_identical = true;
    for &i in &[0, sessions - 1] {
        let oracle = decode_oracle(
            serving,
            model.as_ref(),
            &engine.decode_prompt(i as u64),
            steps,
        )
        .expect("oracle decode executes");
        bit_identical &= collected[i].len() == oracle.len()
            && collected[i].iter().zip(oracle.iter()).all(|(tok, want)| {
                tok.values.len() == want.len()
                    && tok
                        .values
                        .iter()
                        .zip(want.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            });
    }

    // Serial baseline: one session at a time on a fresh server (fresh
    // session stats), each fully drained before the next opens, so every
    // sweep is width 1 — what decoding these sequences costs without
    // iteration-level interleaving.
    let serial_server = engine.server(
        ServerConfig::new()
            .with_workers(2)
            .with_session_capacity(4)
            .with_policy(Arc::new(SloAware)),
    );
    let start = Instant::now();
    for i in 0..serial_sessions {
        let handle = serial_server
            .open_session(
                Arc::clone(&model),
                engine.decode_prompt(i as u64),
                class_of(i),
                steps,
            )
            .expect("serial session admits");
        let ticket = handle.ticket();
        loop {
            match ticket.next_token() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => panic!("serial decode baseline failed: {e}"),
            }
        }
    }
    let serial_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    serial_server.shutdown();

    Some(DecodeBenchResult {
        sessions,
        steps,
        tokens,
        wall_ms,
        tokens_s: if wall_ms > 0.0 {
            tokens as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        token_p50_ms: percentile(&token_ms, 0.50),
        token_p99_ms: percentile(&token_ms, 0.99),
        mean_interleave_width: stats.mean_interleave_width(),
        evictions: stats.evicted,
        resumed: stats.resumed,
        lost_tokens,
        bit_identical,
        serial_sessions,
        serial_wall_ms,
        serial_tokens_s: if serial_wall_ms > 0.0 {
            (serial_sessions * steps) as f64 / (serial_wall_ms / 1e3)
        } else {
            0.0
        },
    })
}

/// The SLO-class mix of the continuous trace: a quarter deadline-bound, a
/// quarter standard, half bulk — enough load in every class for percentiles,
/// with bulk dominating so class-aware dispatch has something to displace.
fn continuous_class(index: usize) -> SloClass {
    match index % 4 {
        0 => SloClass::Deadline {
            deadline_us: 10_000,
        },
        1 => SloClass::Bulk,
        2 => SloClass::Standard,
        _ => SloClass::Bulk,
    }
}

/// The continuous-batching sub-trace: the model's linear-layer request mix
/// submitted **one request at a time** with deterministic Poisson-ish gaps
/// and mixed SLO classes, through two server configurations over the same
/// engine:
///
/// * **windowed** — a nonzero admission window, SLO-aware dispatch,
///   cross-arrival coalescing at the layer-default cap, and
/// * **zero-window** — dispatch-immediately, no coalescing: the shape of the
///   old batch scheduler serving arrivals individually, i.e. what serving
///   this arrival pattern cost before the server existed.
///
/// Both runs measure first-submit→drained wall (identical submission gaps,
/// so the wall ratio is the aggregate-throughput ratio) and the engine's
/// packed-panel byte counter around the run (the counter-verified proof that
/// the window coalesced across arrivals). Windowed responses are compared
/// bit-for-bit against per-request **cold** execution of the same operands
/// (first repetition; later repetitions against the bucketed path, itself
/// gated bit-identical to cold elsewhere in this benchmark). A
/// coalescing-cap sweep over the same request set (atomic batch, zero
/// window) logs the best cap for this box in full mode.
fn run_continuous(
    engine: &ModelEngine,
    model: DnnModel,
    cfg: &EngineConfig,
    quick: bool,
    workers: Option<usize>,
) -> ContinuousBenchResult {
    let serving = engine.serving();
    let gemm_layers = engine.gemm_layer_indices();
    let window_us: u64 = if quick { 200 } else { 8_000 };
    let default_cap = cfg.bucket_policy().max_bucket();
    if gemm_layers.is_empty() {
        return ContinuousBenchResult {
            layers: 0,
            requests: 0,
            window_us,
            windowed_wall_ms: 0.0,
            zero_wall_ms: 0.0,
            bit_identical: true,
            windowed_groups: 0,
            coalesced_requests: 0,
            windowed_panel_bytes: 0,
            zero_panel_bytes: 0,
            deadline_p50_ms: 0.0,
            deadline_p99_ms: 0.0,
            standard_p99_ms: 0.0,
            bulk_p50_ms: 0.0,
            bulk_p99_ms: 0.0,
            cap_sweep: Vec::new(),
            best_cap: default_cap,
            overload_requests: 0,
            overload_shed: 0,
            overload_shed_rate: 0.0,
            overload_deadline_p99_ms: 0.0,
            overload_bulk_p99_ms: 0.0,
            update_swaps: 0,
            update_swap_p99_ms: 0.0,
            repack_bytes_ratio: 0.0,
            stale_plan_executes: 0,
            update_failed_requests: 0,
            replica_count: 0,
            replica_requests: 0,
            replica_failovers: 0,
            failover_p99_ms: 0.0,
            hedge_wins: 0,
            degraded_shed_rate: 0.0,
            replica_failed_requests: 0,
            replica_deadline_p99_ms: 0.0,
            replica_bulk_p99_ms: 0.0,
        };
    }

    // One (layer, width) spec per linear layer per trace batch size,
    // repeated `reps` times with fresh activations — the mixed-width
    // workload arrivals cycle through.
    let (_, timed) = trace_batches(model, quick);
    let batches = &timed[..timed.len().min(4)];
    let mut specs: Vec<(usize, usize)> = Vec::new();
    for &batch in batches {
        let inventory = shfl_models::model_workload(model, batch, cfg.seq_len);
        for &layer in &gemm_layers {
            let (_, n, _) = inventory[layer].kind.gemm_shape();
            specs.push((layer, n));
        }
    }
    let reps = if quick { 2 } else { 4 };
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xc0a1);
    let mut requests = Vec::with_capacity(specs.len() * reps);
    for _ in 0..reps {
        for &(layer, n) in &specs {
            let k = serving.layer_k(layer).expect("registered layer");
            requests.push(Request {
                id: requests.len() as u64,
                layer,
                activations: DenseMatrix::random(&mut rng, k, n),
            });
        }
    }
    // Deterministic Poisson-ish inter-arrival gaps (exponential via inverse
    // CDF, capped); zero in smoke mode — the gaps only matter for the
    // wall-clock gates, which smoke skips.
    let gaps_us: Vec<u64> = (0..requests.len())
        .map(|_| {
            if quick {
                0
            } else {
                let u: f64 = rng.gen_range(0.0..1.0);
                ((-(1.0 - u).ln()) * 120.0).min(600.0) as u64
            }
        })
        .collect();

    // Steady state: warm every bucket the trace (or a coalesced group of it)
    // can land on, like the rest of this benchmark excludes compulsory plan
    // builds from timed windows.
    for &layer in &gemm_layers {
        let policy = serving.layer_policy(layer).expect("registered layer");
        for bucket in policy.buckets() {
            serving.warm(layer, bucket).expect("warm plan builds");
        }
    }

    // Expected outputs: per-request cold execution for the first repetition
    // (fresh exact-width plans — the strongest oracle), the bucketed path
    // for later repetitions (itself gated bit-identical to cold).
    let expected: Vec<DenseMatrix> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i < specs.len() {
                serving.execute_cold(r.layer, &r.activations)
            } else {
                serving.execute(r.layer, &r.activations)
            }
            .expect("trace request executes")
        })
        .collect();

    let submit_all = |server: &shfl_serving::server::Server,
                      requests: Vec<Request>|
     -> (Vec<shfl_serving::server::Ticket>, f64) {
        let start = Instant::now();
        let tickets: Vec<_> = requests
            .into_iter()
            .enumerate()
            .map(|(i, request)| {
                if gaps_us[i] > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(gaps_us[i]));
                }
                let class = continuous_class(i);
                server
                    .submit_classed(request, class)
                    .expect("queue sized to the trace")
            })
            .collect();
        server.drain();
        (tickets, start.elapsed().as_secs_f64() * 1e3)
    };

    // Windowed, SLO-aware, coalescing server.
    let server = engine.server(
        ServerConfig::new()
            .with_workers(4)
            .with_admission_window_us(window_us)
            .with_queue_depth(requests.len())
            .with_policy(Arc::new(SloAware)),
    );
    let before = serving.panel_bytes_read();
    let (tickets, windowed_wall_ms) = submit_all(&server, requests.clone());
    let windowed_panel_bytes = serving.panel_bytes_read() - before;
    let mut bit_identical = true;
    for (ticket, want) in tickets.into_iter().zip(expected.iter()) {
        let got = ticket
            .try_take()
            .expect("drained server delivered every ticket")
            .result
            .expect("trace requests are well-formed");
        bit_identical &= got.shape() == want.shape()
            && got
                .as_slice()
                .iter()
                .zip(want.as_slice().iter())
                .all(|(x, y)| x.to_bits() == y.to_bits());
    }
    let stats = server.stats();
    server.shutdown();

    // Zero-window uncoalesced baseline: every arrival dispatched
    // immediately on its own — the old per-request serving shape.
    let baseline = engine.server(
        ServerConfig::new()
            .with_workers(4)
            .with_admission_window_us(0)
            .with_coalesce(false)
            .with_queue_depth(requests.len())
            .with_policy(Arc::new(Fifo)),
    );
    let before = serving.panel_bytes_read();
    let (tickets, zero_wall_ms) = submit_all(&baseline, requests.clone());
    let zero_panel_bytes = serving.panel_bytes_read() - before;
    for ticket in tickets {
        let _ = ticket.try_take().expect("drained");
    }
    baseline.shutdown();

    // Coalescing-cap sweep (full mode): the same request set as one atomic
    // batch through zero-window coalescing servers at different caps,
    // interleaved best-of-2 — logs where this box's activation-reuse /
    // panel-sweep trade-off lands.
    let mut cap_sweep = Vec::new();
    let mut best_cap = default_cap;
    if !quick {
        let caps = [
            (default_cap / 2).max(8),
            default_cap,
            default_cap * 2,
            default_cap * 4,
        ];
        let mut walls = vec![f64::MAX; caps.len()];
        for _ in 0..2 {
            for (i, &cap) in caps.iter().enumerate() {
                let server = engine.server(
                    ServerConfig::new()
                        .with_workers(4)
                        .with_coalesce_cap(cap)
                        .with_queue_depth(requests.len())
                        .with_policy(Arc::new(Fifo)),
                );
                let batch = requests.clone();
                let start = Instant::now();
                let tickets = server
                    .submit_batch(batch)
                    .expect("queue sized to the batch");
                for ticket in tickets {
                    let _ = ticket.wait();
                }
                walls[i] = walls[i].min(start.elapsed().as_secs_f64() * 1e3);
                server.shutdown();
            }
        }
        cap_sweep = caps.iter().copied().zip(walls.iter().copied()).collect();
        best_cap = caps[walls
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("walls are finite"))
            .map(|(i, _)| i)
            .unwrap_or(1)];
    }

    // Overload sub-trace: the same request mix replayed with **no**
    // inter-arrival gaps against a single worker — arrivals far outrun
    // service capacity (well past 2×), so the admission side has to shed.
    // The bulk class runs behind a small per-class bound while the shared
    // queue fits the trace: excess bulk sheds at the door (typed, counted),
    // admitted bulk still completes — so the gates can check both a nonzero
    // bulk shed rate and the deadline class keeping its p99 strictly under
    // the surviving bulk completions' p99 despite the pressure.
    let bulk_bound = 2.max(requests.len() / 16);
    let overload = engine.server(
        ServerConfig::new()
            .with_workers(1)
            .with_admission_window_us(window_us)
            .with_queue_depth(requests.len())
            .with_class_queue_depth(SloKind::Bulk, bulk_bound)
            .with_policy(Arc::new(SloAware)),
    );
    let mut overload_bulk_arrivals = 0u64;
    let mut overload_tickets = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        let class = continuous_class(i);
        if class.kind() == SloKind::Bulk {
            overload_bulk_arrivals += 1;
        }
        match overload.submit_classed(request.clone(), class) {
            Ok(ticket) => overload_tickets.push(ticket),
            // Bulk sheds at the door; latency-sensitive overflow with no
            // bulk victim left is retryable backpressure. Both are expected
            // under deliberate overload.
            Err(SubmitError::Shed) | Err(SubmitError::QueueFull { .. }) => {}
            Err(e) => panic!("overload trace rejected unexpectedly: {e}"),
        }
    }
    overload.drain();
    for ticket in overload_tickets {
        match ticket.try_take().expect("drained").result {
            Ok(_) | Err(ServingError::Shed) => {}
            Err(e) => panic!("overload trace failed unexpectedly: {e}"),
        }
    }
    let overload_stats = overload.stats();
    overload.shutdown();
    let overload_shed = overload_stats.shed_submissions + overload_stats.shed_queued;

    // Live-update sub-trace: same-pattern magnitude swaps published while
    // mixed-class traffic is in flight against the updated layer — the
    // zero-downtime path. Swaps alternate a ×1.25 republish with a rollback,
    // so the engine's weights end bit-exactly where the sub-trace found
    // them; every ticket accepted across a swap must still complete (the
    // `update_failed_requests == 0` gate), and the delta re-pack must move
    // strictly fewer bytes than full rebuilds (the ratio gate). This runs
    // last: the swaps themselves are invisible to the earlier oracles.
    let update_layer = gemm_layers[0];
    let update_policy = serving
        .layer_policy(update_layer)
        .expect("registered layer");
    let update_k = serving.layer_k(update_layer).expect("registered layer");
    let swap_target = 8usize;
    let update_server = engine.server(
        ServerConfig::new()
            .with_workers(2)
            .with_admission_window_us(window_us)
            .with_queue_depth(swap_target * 3)
            .with_policy(Arc::new(SloAware)),
    );
    let mut update_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5a9d);
    let mut swap_walls_ms = Vec::with_capacity(swap_target);
    let mut update_tickets = Vec::new();
    for swap in 0..swap_target {
        // Land a small mixed-class wave, then swap while it is in flight.
        for j in 0..3usize {
            let i = swap * 3 + j;
            let n = 1 + (i * 5) % update_policy.max_bucket();
            update_tickets.push(
                update_server
                    .submit_classed(
                        Request {
                            id: i as u64,
                            layer: update_layer,
                            activations: DenseMatrix::random(&mut update_rng, update_k, n),
                        },
                        continuous_class(i),
                    )
                    .expect("queue sized to the update trace"),
            );
        }
        let report = if swap % 2 == 0 {
            let current = serving
                .layer_weights(update_layer)
                .expect("registered layer");
            let vw = current.vector_wise();
            let values: Vec<f32> = vw.values().iter().map(|x| x * 1.25).collect();
            let inner = VectorWiseMatrix::from_parts(
                vw.rows(),
                vw.cols(),
                vw.vector_size(),
                vw.group_ptr().to_vec(),
                vw.col_idx().to_vec(),
                values,
            )
            .expect("same-pattern update");
            let update = ShflBwMatrix::from_vector_wise(inner, current.row_indices().to_vec())
                .expect("same-pattern update");
            serving
                .update_layer(update_layer, update)
                .expect("same-pattern update publishes")
        } else {
            serving
                .rollback_layer(update_layer)
                .expect("rollback publishes")
        };
        swap_walls_ms.push(report.swap_ms);
    }
    update_server.drain();
    let mut update_failed_requests = 0u64;
    for ticket in update_tickets {
        if ticket.try_take().expect("drained").result.is_err() {
            update_failed_requests += 1;
        }
    }
    update_server.shutdown();
    let update_stats = serving.update_stats();
    let repack_bytes_ratio = if update_stats.rebuild_bytes > 0 {
        update_stats.repack_bytes as f64 / update_stats.rebuild_bytes as f64
    } else {
        0.0
    };

    // Replicated sub-trace: three data-parallel replicas of the engine
    // behind one server, driven through scripted replica loss via the
    // production admin API (the deterministic face of the chaos
    // `kill_replica_at` fault point). This runs after the update sub-trace,
    // whose alternating republish/rollback swaps leave the engine's weights
    // bit-exactly where they started — so the `expected` oracle above still
    // holds and the replicas mirror it. Phase 1 submits the mix gap-free
    // and kills the home replica of the trace's first layer mid-submission:
    // every group homed there fails over in ring order, and every accepted
    // ticket must still resolve bit-identically to the single-engine oracle
    // (a failed-over response is indistinguishable by construction). Phase 2
    // drops to one routable replica out of three: Bulk sheds with the typed
    // error (graceful degradation), Deadline and Standard keep serving.
    // Hedged dispatch is enabled for every Deadline group so the hedge race
    // runs under real traffic (recorded, not gated).
    let replica_count = 3usize;
    let replica_workers = workers.unwrap_or(2);
    let matches_oracle = |got: &DenseMatrix, want: &DenseMatrix| {
        got.shape() == want.shape()
            && got
                .as_slice()
                .iter()
                .zip(want.as_slice().iter())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    };
    let set = ReplicaSet::replicate(
        serving,
        replica_count,
        ReplicaConfig::new().with_hedge_slack_us(u64::MAX),
    );
    // Steady state on every replica, like the single-engine warmup above —
    // the class percentiles should measure queueing and routing, not
    // compulsory plan builds.
    for replica in 0..replica_count {
        let rep_engine = set.engine(replica);
        for &layer in &gemm_layers {
            let policy = rep_engine.layer_policy(layer).expect("registered layer");
            for bucket in policy.buckets() {
                rep_engine.warm(layer, bucket).expect("warm plan builds");
            }
        }
    }
    let rep_server = Server::start_replicated(
        set,
        ServerConfig::new()
            .with_workers(replica_workers)
            .with_admission_window_us(window_us)
            .with_queue_depth(requests.len())
            .with_policy(Arc::new(SloAware)),
    );
    let set = rep_server.replica_set();
    let victim = set.home(specs[0].0);
    let rep_len = specs.len() * reps.min(2);
    let kill_at = rep_len / 2;
    let mut replica_failed_requests = 0u64;
    let mut rep_tickets = Vec::with_capacity(rep_len);
    for (i, request) in requests[..rep_len].iter().enumerate() {
        if i == kill_at {
            // Scripted replica loss mid-trace. The second half repeats every
            // spec, so groups homed on the victim are guaranteed to arrive
            // after the kill and fail over.
            set.kill_replica(victim);
        }
        rep_tickets.push(
            rep_server
                .submit_classed(request.clone(), continuous_class(i))
                .expect("queue sized to the trace"),
        );
    }
    for (ticket, want) in rep_tickets.into_iter().zip(expected.iter()) {
        match ticket.wait().result {
            Ok(got) if matches_oracle(&got, want) => {}
            _ => replica_failed_requests += 1,
        }
    }
    // Phase 2: revive the victim, then drop the other two — one routable
    // replica of three is below the shed threshold.
    set.revive_replica(victim);
    set.kill_replica((victim + 1) % replica_count);
    set.kill_replica((victim + 2) % replica_count);
    let mut degraded_bulk = 0u64;
    let mut degraded_shed = 0u64;
    let mut degraded_tickets = Vec::new();
    for (i, request) in requests[..specs.len()].iter().enumerate() {
        let class = continuous_class(i);
        if class.kind() == SloKind::Bulk {
            degraded_bulk += 1;
        }
        degraded_tickets.push((
            i,
            rep_server
                .submit_classed(request.clone(), class)
                .expect("queue sized to the trace"),
        ));
    }
    for (i, ticket) in degraded_tickets {
        match ticket.wait().result {
            Ok(got) if matches_oracle(&got, &expected[i]) => {}
            Err(ServingError::Shed) if continuous_class(i).kind() == SloKind::Bulk => {
                degraded_shed += 1;
            }
            _ => replica_failed_requests += 1,
        }
    }
    for replica in 0..replica_count {
        set.revive_replica(replica);
    }
    let rep_stats = rep_server.stats();
    rep_server.drain();
    rep_server.shutdown();
    let replica_set_stats = rep_stats
        .replicas
        .clone()
        .expect("replicated server reports replica stats");

    ContinuousBenchResult {
        layers: gemm_layers.len(),
        requests: requests.len(),
        window_us,
        windowed_wall_ms,
        zero_wall_ms,
        bit_identical,
        windowed_groups: stats.dispatched_groups,
        coalesced_requests: stats.coalesced_requests,
        windowed_panel_bytes,
        zero_panel_bytes,
        deadline_p50_ms: stats
            .class_percentile_ms(SloKind::Deadline, 0.50)
            .unwrap_or(0.0),
        deadline_p99_ms: stats
            .class_percentile_ms(SloKind::Deadline, 0.99)
            .unwrap_or(0.0),
        standard_p99_ms: stats
            .class_percentile_ms(SloKind::Standard, 0.99)
            .unwrap_or(0.0),
        bulk_p50_ms: stats
            .class_percentile_ms(SloKind::Bulk, 0.50)
            .unwrap_or(0.0),
        bulk_p99_ms: stats
            .class_percentile_ms(SloKind::Bulk, 0.99)
            .unwrap_or(0.0),
        cap_sweep,
        best_cap,
        overload_requests: requests.len(),
        overload_shed,
        overload_shed_rate: if overload_bulk_arrivals > 0 {
            overload_shed as f64 / overload_bulk_arrivals as f64
        } else {
            0.0
        },
        overload_deadline_p99_ms: overload_stats
            .class_percentile_ms(SloKind::Deadline, 0.99)
            .unwrap_or(0.0),
        overload_bulk_p99_ms: overload_stats
            .class_percentile_ms(SloKind::Bulk, 0.99)
            .unwrap_or(0.0),
        update_swaps: update_stats.swaps,
        update_swap_p99_ms: percentile(&swap_walls_ms, 0.99),
        repack_bytes_ratio,
        stale_plan_executes: update_stats.stale_plan_executes,
        update_failed_requests,
        replica_count,
        replica_requests: rep_len + specs.len(),
        replica_failovers: replica_set_stats.failovers,
        failover_p99_ms: replica_set_stats.failover_p99_ms().unwrap_or(0.0),
        hedge_wins: replica_set_stats.hedges_won,
        degraded_shed_rate: if degraded_bulk > 0 {
            degraded_shed as f64 / degraded_bulk as f64
        } else {
            0.0
        },
        replica_failed_requests,
        replica_deadline_p99_ms: rep_stats
            .class_percentile_ms(SloKind::Deadline, 0.99)
            .unwrap_or(0.0),
        replica_bulk_p99_ms: rep_stats
            .class_percentile_ms(SloKind::Bulk, 0.99)
            .unwrap_or(0.0),
    }
}

/// Renders the plain-text serving report table.
pub fn to_table(results: &[ServingBenchResult]) -> String {
    let mut out = String::from(
        "Serving trace: bucketed plan-cache vs per-request cold plan builds (mixed batch sizes)\n\
         model        | fwd | hit-rate | p50 ms  | p95 ms  | p99 ms  | bucketed         | cold             | vs cold | bit-id | mt (reqs @ workers)\n\
         -------------+-----+----------+---------+---------+---------+------------------+------------------+---------+--------+--------------------\n",
    );
    for r in results {
        out.push_str(&format!(
            "{:12} | {:3} | {:7.1}% | {:7.2} | {:7.2} | {:7.2} | {:8.1} {:7} | {:8.1} {:7} | {:6.2}x | {:6} | {:.1} ms ({} @ {})\n",
            r.model,
            r.forwards,
            r.hit_rate * 100.0,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.throughput,
            r.unit,
            r.cold_throughput,
            r.unit,
            r.speedup_vs_cold(),
            r.bit_identical,
            r.mt_wall_ms,
            r.mt_requests,
            r.mt_workers,
        ));
    }
    out.push_str(
        "\nFused panel sweep & cross-request coalescing\n\
         model        | probe segs | panel fused / 1-sweep | restream cut | coalesced (reqs)    | vs fan-out | coal bit-id\n\
         -------------+------------+-----------------------+--------------+---------------------+------------+------------\n",
    );
    for r in results {
        out.push_str(&format!(
            "{:12} | {:10} | {:9} / {:9} B | {:11.2}x | {:9.1} ms ({:3}) | {:9.2}x | {}\n",
            r.model,
            r.panel_segments,
            r.panel_bytes_fused,
            r.panel_sweep_bytes,
            r.panel_restream_ratio(),
            r.coalesced_wall_ms,
            r.coalesced_requests,
            r.coalescing_speedup(),
            r.coalesced_bit_identical,
        ));
    }
    out.push_str(
        "\nContinuous batching: windowed SLO-aware Server vs zero-window per-request baseline\n\
         model        | lyr | reqs | window  | windowed   | zero-win   | speedup | groups | coal reqs | panel cut | dl p50/p99 ms     | bulk p50/p99 ms   | bit-id\n\
         -------------+-----+------+---------+------------+------------+---------+--------+-----------+-----------+-------------------+-------------------+-------\n",
    );
    for r in results {
        let c = &r.continuous;
        out.push_str(&format!(
            "{:12} | {:3} | {:4} | {:4} us | {:7.1} ms | {:7.1} ms | {:6.2}x | {:6} | {:9} | {:8.2}x | {:7.2} / {:7.2} | {:7.2} / {:7.2} | {}\n",
            r.model,
            c.layers,
            c.requests,
            c.window_us,
            c.windowed_wall_ms,
            c.zero_wall_ms,
            c.window_speedup(),
            c.windowed_groups,
            c.coalesced_requests,
            c.panel_reduction(),
            c.deadline_p50_ms,
            c.deadline_p99_ms,
            c.bulk_p50_ms,
            c.bulk_p99_ms,
            c.bit_identical,
        ));
    }
    out.push_str(
        "\nOverload sub-trace: gap-free arrivals, one worker, bounded bulk class (bulk sheds; deadline holds)\n\
         model        | reqs | shed | shed rate | dl p99 ms | bulk p99 ms\n\
         -------------+------+------+-----------+-----------+------------\n",
    );
    for r in results {
        let c = &r.continuous;
        out.push_str(&format!(
            "{:12} | {:4} | {:4} | {:8.1}% | {:9.2} | {:10.2}\n",
            r.model,
            c.overload_requests,
            c.overload_shed,
            c.overload_shed_rate * 100.0,
            c.overload_deadline_p99_ms,
            c.overload_bulk_p99_ms,
        ));
    }
    out.push_str(
        "\nLive weight updates: same-pattern swaps under in-flight traffic (delta re-pack vs full rebuild)\n\
         model        | swaps | swap p99 ms | repack/rebuild B | stale execs | failed reqs\n\
         -------------+-------+-------------+------------------+-------------+------------\n",
    );
    for r in results {
        let c = &r.continuous;
        out.push_str(&format!(
            "{:12} | {:5} | {:11.2} | {:15.3}x | {:11} | {:11}\n",
            r.model,
            c.update_swaps,
            c.update_swap_p99_ms,
            c.repack_bytes_ratio,
            c.stale_plan_executes,
            c.update_failed_requests,
        ));
    }
    out.push_str(
        "\nReplicated serving: scripted replica kill mid-trace, failover + hedged dispatch, degraded-mode shed\n\
         model        | replicas | reqs | failovers | fo p99 ms | hedge wins | shed rate | dl p99 ms | bulk p99 ms | failed\n\
         -------------+----------+------+-----------+-----------+------------+-----------+-----------+-------------+-------\n",
    );
    for r in results {
        let c = &r.continuous;
        out.push_str(&format!(
            "{:12} | {:8} | {:4} | {:9} | {:9.2} | {:10} | {:8.1}% | {:9.2} | {:11.2} | {:6}\n",
            r.model,
            c.replica_count,
            c.replica_requests,
            c.replica_failovers,
            c.failover_p99_ms,
            c.hedge_wins,
            c.degraded_shed_rate * 100.0,
            c.replica_deadline_p99_ms,
            c.replica_bulk_p99_ms,
            c.replica_failed_requests,
        ));
    }
    let mut decoded = false;
    for r in results {
        let Some(d) = &r.decode else { continue };
        if !decoded {
            out.push_str(
                "\nDecode sessions: iteration-level interleaved decode vs one-session-at-a-time serial\n\
                 model        | sess | steps | tokens | wall ms   | tok/s    | tok p50/p99 ms    | width | evict/resume | lost | bit-id | serial tok/s | vs serial\n\
                 -------------+------+-------+--------+-----------+----------+-------------------+-------+--------------+------+--------+--------------+----------\n",
            );
            decoded = true;
        }
        out.push_str(&format!(
            "{:12} | {:4} | {:5} | {:6} | {:9.1} | {:8.1} | {:7.2} / {:7.2} | {:5.1} | {:4} / {:5} | {:4} | {:6} | {:12.1} | {:7.2}x\n",
            r.model,
            d.sessions,
            d.steps,
            d.tokens,
            d.wall_ms,
            d.tokens_s,
            d.token_p50_ms,
            d.token_p99_ms,
            d.mean_interleave_width,
            d.evictions,
            d.resumed,
            d.lost_tokens,
            d.bit_identical,
            d.serial_tokens_s,
            d.interleave_speedup(),
        ));
    }
    let mut swept = false;
    for r in results {
        if r.continuous.cap_sweep.is_empty() {
            continue;
        }
        if !swept {
            out.push_str("\nCoalescing-cap sweep (atomic batch, zero window; best cap per model for this box)\n");
            swept = true;
        }
        let sweep: Vec<String> = r
            .continuous
            .cap_sweep
            .iter()
            .map(|(cap, ms)| format!("{cap}: {ms:.1} ms"))
            .collect();
        out.push_str(&format!(
            "{:12} | best cap {:4} | {}\n",
            r.model,
            r.continuous.best_cap,
            sweep.join(" | ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&samples, 0.50), 2.0);
        assert_eq!(percentile(&samples, 0.95), 4.0);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn timed_widths_map_onto_warmed_buckets() {
        // The trace invariant the hit-rate gate rests on: every timed batch's
        // activation width lands on a bucket some warm batch already cached.
        // (The full end-to-end trace runs as the gated CI step
        // `repro --bench-serving --smoke`; re-running it here would double
        // the suite's cost in debug mode.)
        for model in DnnModel::all() {
            for quick in [true, false] {
                let cfg = if quick {
                    EngineConfig::smoke()
                } else {
                    EngineConfig::paper_default()
                };
                let seq = cfg.seq_len;
                let (warm, timed) = trace_batches(model, quick);
                // One serving width per (layer, batch): the implicit-GEMM N
                // of every layer in the inventory, mapped onto the buckets
                // the engine actually executes on — the single segment's
                // bucket, or only the layer policy's largest bucket for a
                // multi-segment width (the fused sweep runs on that one
                // plan). Layer policies follow EngineConfig::policy_for,
                // exactly like the engine build.
                let layer_buckets = |batch: usize| -> Vec<(usize, usize)> {
                    shfl_models::model_workload(model, batch, seq)
                        .iter()
                        .enumerate()
                        .flat_map(|(idx, layer)| {
                            let policy = cfg.policy_for(&layer.kind);
                            let (_, n, _) = layer.kind.gemm_shape();
                            let segments = policy.segments(n);
                            let buckets: Vec<usize> = match segments.as_slice() {
                                [single] => vec![single.bucket],
                                [] => Vec::new(),
                                _ => vec![policy.max_bucket()],
                            };
                            buckets.into_iter().map(move |b| (idx, b))
                        })
                        .collect()
                };
                let warmed: std::collections::BTreeSet<(usize, usize)> =
                    warm.iter().flat_map(|&b| layer_buckets(b)).collect();
                for &batch in &timed {
                    for key in layer_buckets(batch) {
                        assert!(
                            warmed.contains(&key),
                            "{model} quick={quick}: timed batch {batch} needs \
                             un-warmed (layer, bucket) {key:?}"
                        );
                    }
                }
                // New widths appear in the timed trace, so exact-width plan
                // keying (the regression the gate exists for) would miss.
                // Exception: ResNet warms every timed batch (see
                // `trace_batches`), so the keying regression is the GEMM
                // models' job to catch.
                if model != DnnModel::Resnet50 {
                    assert!(
                        timed.iter().any(|b| !warm.contains(b)),
                        "{model} quick={quick}: trace has no unseen widths"
                    );
                }
            }
        }
    }

    #[test]
    fn table_renders_synthetic_results() {
        let results = vec![ServingBenchResult {
            model: "Transformer".into(),
            unit: "tokens/s",
            forwards: 16,
            hit_rate: 0.96,
            p50_ms: 10.0,
            p95_ms: 14.0,
            p99_ms: 16.0,
            throughput: 420.0,
            cold_throughput: 300.0,
            bit_identical: true,
            mt_workers: 4,
            mt_requests: 64,
            mt_wall_ms: 123.4,
            panel_segments: 5,
            panel_sweep_bytes: 1000,
            panel_bytes_fused: 1000,
            panel_bytes_segmented: 5000,
            coalesced_requests: 64,
            coalesced_wall_ms: 61.7,
            coalesced_bit_identical: true,
            continuous: ContinuousBenchResult {
                layers: 6,
                requests: 96,
                window_us: 8_000,
                windowed_wall_ms: 50.0,
                zero_wall_ms: 100.0,
                bit_identical: true,
                windowed_groups: 30,
                coalesced_requests: 80,
                windowed_panel_bytes: 1000,
                zero_panel_bytes: 4000,
                deadline_p50_ms: 9.0,
                deadline_p99_ms: 12.0,
                standard_p99_ms: 20.0,
                bulk_p50_ms: 18.0,
                bulk_p99_ms: 30.0,
                cap_sweep: vec![(128, 70.0), (256, 60.0), (512, 65.0)],
                best_cap: 256,
                overload_requests: 96,
                overload_shed: 24,
                overload_shed_rate: 0.5,
                overload_deadline_p99_ms: 14.0,
                overload_bulk_p99_ms: 55.0,
                update_swaps: 8,
                update_swap_p99_ms: 3.5,
                repack_bytes_ratio: 0.125,
                stale_plan_executes: 2,
                update_failed_requests: 0,
                replica_count: 3,
                replica_requests: 72,
                replica_failovers: 5,
                failover_p99_ms: 2.25,
                hedge_wins: 4,
                degraded_shed_rate: 1.0,
                replica_failed_requests: 0,
                replica_deadline_p99_ms: 11.0,
                replica_bulk_p99_ms: 28.0,
            },
            decode: Some(DecodeBenchResult {
                sessions: 32,
                steps: 64,
                tokens: 2048,
                wall_ms: 400.0,
                tokens_s: 5120.0,
                token_p50_ms: 5.0,
                token_p99_ms: 9.0,
                mean_interleave_width: 24.5,
                evictions: 4,
                resumed: 4,
                lost_tokens: 0,
                bit_identical: true,
                serial_sessions: 4,
                serial_wall_ms: 200.0,
                serial_tokens_s: 1280.0,
            }),
        }];
        assert!((results[0].speedup_vs_cold() - 1.4).abs() < 1e-12);
        assert!((results[0].panel_restream_ratio() - 5.0).abs() < 1e-12);
        assert!((results[0].coalescing_speedup() - 2.0).abs() < 1e-12);
        assert!((results[0].continuous.window_speedup() - 2.0).abs() < 1e-12);
        assert!((results[0].continuous.panel_reduction() - 4.0).abs() < 1e-12);
        let table = to_table(&results);
        assert!(table.contains("Transformer") && table.contains("hit-rate"));
        assert!(table.contains("96.0%"));
        assert!(table.contains("restream cut"));
        assert!(table.contains("Continuous batching"));
        assert!(table.contains("Overload sub-trace"));
        assert!(table.contains("50.0%"));
        assert!(table.contains("Live weight updates"));
        assert!(table.contains("0.125x"));
        assert!(table.contains("Replicated serving"));
        assert!(table.contains("100.0%"));
        assert!((results[0].decode.as_ref().unwrap().interleave_speedup() - 4.0).abs() < 1e-12);
        assert!(table.contains("Decode sessions"));
        assert!(table.contains("4.00x"));
        assert!(table.contains("best cap  256"));
    }
}
