//! `repro` — regenerates the paper's tables and figures from the command line.
//!
//! ```text
//! repro [--experiment fig1|fig2|fig6|table1|ablation|analysis|headline|all]
//! repro --bench-kernels [--smoke] [--bench-output BENCH_kernels.json]
//! repro --bench-serving [--smoke]
//! ```
//!
//! With no arguments every experiment is run. The output is plain text, one section
//! per experiment, mirroring the rows/series the paper reports.
//!
//! `--bench-kernels` instead runs the wall-clock kernel benchmark (naive
//! reference vs cold blocked call vs prepared plan, same run) plus the
//! end-to-end model engines and the serving trace, and writes
//! `BENCH_kernels.json` (schema v2). `--smoke` shrinks every shape to a tiny
//! configuration and skips the wall-clock speedup gates (bit-identity is
//! still enforced) — the CI mode that keeps the bench code from bitrotting
//! between perf PRs.
//!
//! `--bench-serving` runs only the mixed-size serving trace over the bucketed
//! plan cache and gates on the steady-state plan-cache miss rate (≤ 10%),
//! bit-identity against the cold exact-width oracle, the fused panel sweep's
//! re-streaming reduction (panel bytes of a ≥4-segment request must stay
//! under 1.5× the single-sweep lower bound, and the per-segment baseline
//! must pay ≥3× the fused bytes — both counter-verified, so they gate in
//! smoke mode too), cross-request coalescing bit-identity, and (full mode
//! only) bucketed aggregate throughput beating per-request cold plan builds
//! plus coalesced throughput not losing to the uncoalesced fan-out.
//!
//! The serving run also drives the **continuous-batching** sub-trace
//! (staggered one-at-a-time submissions with mixed deadline/standard/bulk
//! classes through `shfl_serving::server::Server`): bit-identity against
//! per-request cold execution gates in every mode; full mode additionally
//! gates on the admission window coalescing across arrivals (group and
//! panel-byte counters), on windowed aggregate throughput not losing to the
//! zero-window baseline (with at least one ≥4-layer workload strictly
//! beating it), and on deadline-class p99 staying below bulk-class p99. The
//! **overload** sub-trace (gap-free arrivals against one worker and a small
//! bulk-class bound) gates on a nonzero bulk shed count in every mode — the
//! load-shedding path is structural, not timing-dependent — and, in full
//! mode, on deadline p99 staying strictly below bulk p99 under overload.

use gpu_sim::GpuArch;
use shfl_bench::experiments::{ablation, analysis, fig1, fig2, fig6, table1};
use shfl_bench::{bench_kernels, bench_serving};
use std::env;
use std::process::ExitCode;

/// The serving gate: steady-state plan-cache miss rate above this fraction
/// fails the run (bucketing is supposed to make serving hit-dominated; a
/// keying or eviction regression shows up here first).
const MAX_SERVING_MISS_RATE: f64 = 0.10;

fn print_fig1() {
    for arch in GpuArch::all() {
        println!("[{}]", arch);
        println!("{}", fig1::to_table(&fig1::run(&arch)));
    }
}

fn print_fig2() {
    println!("{}", fig2::to_table(&fig2::run()));
}

fn print_fig6() {
    println!("{}", fig6::to_table(&fig6::run(false)));
}

fn print_headline() {
    println!("Headline: Shfl-BW speedup on Transformer GEMM layers at 75% sparsity");
    println!("(paper reports 1.81x on V100, 4.18x on T4, 1.90x on A100)");
    for (gpu, speedup) in fig6::headline_transformer_speedups() {
        println!("  {gpu:5}: {speedup:.2}x");
    }
    println!();
}

fn print_table1() {
    println!("{}", table1::to_table(&table1::run()));
}

fn print_ablation() {
    println!(
        "{}",
        ablation::to_table(
            &ablation::shuffle_overhead(),
            &ablation::prefetch_ablation(),
            &ablation::vector_size_sweep(),
        )
    );
}

fn print_analysis() {
    println!("{}", analysis::to_table(&analysis::run()));
}

/// Runs the wall-clock kernel benchmark and writes the JSON trajectory.
///
/// In full mode the run is gated on the acceptance targets: ≥5× naive-over-
/// blocked on both headline kernels, ≥1.5× prepared-over-cold on the Shfl-BW
/// headline, ≥1× blocked-over-naive on the CUDA-core CSR kernel, ≥1.5×
/// implicit-conv over materialised im2col on the ResNet-50 forward,
/// end-to-end numbers present for all three models, bit-identical outputs
/// everywhere (including implicit conv vs the cold im2col oracle), and zero
/// im2col bytes charged on the implicit path. `--smoke` keeps only the
/// bit-identity, zero-materialisation and model-presence gates (tiny shapes
/// make wall-clock ratios meaningless).
fn run_bench_kernels(output_path: &str, smoke: bool) -> ExitCode {
    println!(
        "Running the kernel wall-clock benchmark (naive vs cold vs prepared{})...",
        if smoke { ", smoke shapes" } else { "" }
    );
    let run = bench_kernels::run(smoke);
    print!("{}", bench_kernels::to_table(&run));
    let json = bench_kernels::to_json(&run);
    if let Err(err) = std::fs::write(output_path, &json) {
        eprintln!("error: cannot write {output_path}: {err}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {output_path}");

    let mut ok = true;
    for r in &run.kernels {
        if !r.bit_identical {
            eprintln!(
                "error: kernel {} ({}) is not bit-identical across naive/cold/prepared",
                r.kernel, r.shape
            );
            ok = false;
        }
    }
    if run.models.len() != 3 {
        eprintln!(
            "error: expected end-to-end numbers for 3 models, got {}",
            run.models.len()
        );
        ok = false;
    }
    // Implicit-GEMM convolution gates (ResNet-50). Bit-identity against the
    // cold im2col oracle and the zero-materialisation counter proof hold at
    // any shape, so both run in smoke too; the wall-clock target is
    // full-shapes only.
    match run
        .models
        .iter()
        .find_map(|m| m.conv_implicit.as_ref().map(|c| (m, c)))
    {
        None => {
            eprintln!("error: no model recorded the implicit-conv comparison");
            ok = false;
        }
        Some((m, c)) => {
            if !c.bit_identical {
                eprintln!(
                    "error: {} implicit-conv outputs are not bit-identical to the im2col oracle",
                    m.model
                );
                ok = false;
            }
            if c.im2col_bytes_on_implicit != 0 {
                eprintln!(
                    "error: {} implicit forward charged {} bytes of im2col materialisation (expected 0)",
                    m.model, c.im2col_bytes_on_implicit
                );
                ok = false;
            }
            if !smoke && c.speedup() < 1.5 {
                eprintln!(
                    "error: {} implicit-conv forward missed its >=1.5x target over im2col: {:.2}x",
                    m.model,
                    c.speedup()
                );
                ok = false;
            }
        }
    }
    if !smoke {
        for r in run.kernels.iter().filter(|r| r.headline) {
            if r.speedup() < 5.0 {
                eprintln!(
                    "error: headline kernel {} ({}) missed its >=5x target: {:.1}x",
                    r.kernel,
                    r.shape,
                    r.speedup()
                );
                ok = false;
            }
        }
        if let Some(shfl) = run
            .kernels
            .iter()
            .find(|r| r.kernel == "shfl_bw_spmm_execute")
        {
            // Steady-state prepared-vs-cold is 1.5–1.7x on the headline shape;
            // the regression gate sits below the shared-machine noise band
            // (±0.15x run-to-run) so only a real regression trips it.
            if shfl.prepared_speedup() < 1.35 {
                eprintln!(
                    "error: prepared Shfl-BW plan regressed vs the cold path: {:.2}x (steady state is >=1.5x)",
                    shfl.prepared_speedup()
                );
                ok = false;
            }
        }
        if let Some(csr) = run
            .kernels
            .iter()
            .find(|r| r.kernel == "cuda_core_spmm_execute")
        {
            if csr.speedup() < 1.0 {
                eprintln!(
                    "error: cuda_core blocked path slower than naive: {:.2}x",
                    csr.speedup()
                );
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs the serving trace and applies the serving gates. `workers`
/// overrides the replicated sub-trace's server worker count (the CI
/// `--workers` smoke matrix).
fn run_bench_serving(smoke: bool, workers: Option<usize>) -> ExitCode {
    println!(
        "Running the serving benchmark (bucketed plan cache vs cold per-request plans{}{})...",
        if smoke { ", smoke shapes" } else { "" },
        workers
            .map(|w| format!(", {w} replicated-tier workers"))
            .unwrap_or_default()
    );
    let results = bench_serving::run_with_workers(smoke, workers);
    print!("{}", bench_serving::to_table(&results));

    let mut ok = true;
    for r in &results {
        if !r.bit_identical {
            eprintln!(
                "error: {} bucketed outputs are not bit-identical to the cold oracle",
                r.model
            );
            ok = false;
        }
        let miss_rate = 1.0 - r.hit_rate;
        if miss_rate > MAX_SERVING_MISS_RATE {
            eprintln!(
                "error: {} steady-state plan-cache miss rate {:.1}% exceeds the {:.0}% gate",
                r.model,
                miss_rate * 100.0,
                MAX_SERVING_MISS_RATE * 100.0
            );
            ok = false;
        }
        if !smoke && r.throughput <= r.cold_throughput {
            eprintln!(
                "error: {} bucketed serving ({:.1} {}) did not beat per-request cold plans ({:.1} {})",
                r.model, r.throughput, r.unit, r.cold_throughput, r.unit
            );
            ok = false;
        }
        // The fused-sweep gates are byte-counter based, hence deterministic:
        // they apply in smoke mode too.
        if r.panel_segments < 4 {
            eprintln!(
                "error: {} panel probe produced only {} segments (needs >= 4)",
                r.model, r.panel_segments
            );
            ok = false;
        }
        if (r.panel_bytes_fused as f64) >= 1.5 * r.panel_sweep_bytes as f64 {
            eprintln!(
                "error: {} fused sweep read {} panel bytes for a {}-segment \
                 request, >= 1.5x the single-sweep lower bound {}",
                r.model, r.panel_bytes_fused, r.panel_segments, r.panel_sweep_bytes
            );
            ok = false;
        }
        if (r.panel_bytes_segmented as f64) < 3.0 * r.panel_bytes_fused as f64 {
            eprintln!(
                "error: {} fused sweep cut panel re-streaming only {:.2}x vs the \
                 per-segment baseline (needs >= 3x)",
                r.model,
                r.panel_restream_ratio()
            );
            ok = false;
        }
        if !r.coalesced_bit_identical {
            eprintln!(
                "error: {} coalesced responses are not bit-identical to the \
                 uncoalesced fan-out",
                r.model
            );
            ok = false;
        }
        // Wall-clock: coalescing must not lose to the per-request fan-out.
        // Both walls are best-of-2 already; a residual noise band covers the
        // shared single-core box (wider for tiny smoke shapes). The models
        // whose requests are narrow relative to their buckets (GNMT decode,
        // ResNet) win 3–4x outright; wide-request traces (Transformer) sit
        // near parity by construction, which is exactly what the band is
        // for.
        let coalesce_budget = if smoke {
            r.mt_wall_ms * 1.10
        } else {
            r.mt_wall_ms * 1.05
        };
        if r.coalesced_requests > 0 && r.coalesced_wall_ms > coalesce_budget {
            eprintln!(
                "error: {} coalesced serving ({:.1} ms) lost to the uncoalesced \
                 fan-out ({:.1} ms) over {} requests",
                r.model, r.coalesced_wall_ms, r.mt_wall_ms, r.coalesced_requests
            );
            ok = false;
        }
        // Continuous-batching gates. Bit-identity against per-request cold
        // execution is deterministic and applies in smoke mode too; the
        // wall-clock, coalescing and SLO gates need the full-size trace with
        // real arrival gaps.
        let c = &r.continuous;
        if !c.bit_identical {
            eprintln!(
                "error: {} windowed-server responses are not bit-identical to \
                 per-request cold execution",
                r.model
            );
            ok = false;
        }
        if !smoke && c.requests > 0 {
            // The admission window must actually coalesce across arrivals:
            // fewer dispatched groups than requests, and strictly fewer
            // packed-panel bytes than the zero-window per-request baseline
            // (both counter-verified, not timing-derived).
            if c.windowed_groups >= c.requests as u64 || c.coalesced_requests == 0 {
                eprintln!(
                    "error: {} windowed server dispatched {} groups for {} \
                     requests and coalesced {} — the admission window batched \
                     nothing across arrivals",
                    r.model, c.windowed_groups, c.requests, c.coalesced_requests
                );
                ok = false;
            }
            if c.windowed_panel_bytes >= c.zero_panel_bytes {
                eprintln!(
                    "error: {} windowed server streamed {} panel bytes, not \
                     less than the zero-window baseline's {}",
                    r.model, c.windowed_panel_bytes, c.zero_panel_bytes
                );
                ok = false;
            }
            // Aggregate throughput: the window trades p50 for throughput, so
            // it must never lose beyond the shared-box noise band; models
            // whose request widths are narrow relative to the cap (≥4-layer
            // GEMM traces) must win outright (gated via best-of below).
            if c.windowed_wall_ms > c.zero_wall_ms * 1.05 {
                eprintln!(
                    "error: {} windowed serving ({:.1} ms) lost to the \
                     zero-window baseline ({:.1} ms) over {} requests",
                    r.model, c.windowed_wall_ms, c.zero_wall_ms, c.requests
                );
                ok = false;
            }
            // Deadline-class SLO scheduling must show: lower p99 than bulk
            // under the same load (multi-layer traces — single-layer ResNet
            // has too few samples per class for a stable p99).
            if c.layers >= 4 && c.deadline_p99_ms >= c.bulk_p99_ms {
                eprintln!(
                    "error: {} deadline-class p99 ({:.2} ms) is not below \
                     bulk-class p99 ({:.2} ms)",
                    r.model, c.deadline_p99_ms, c.bulk_p99_ms
                );
                ok = false;
            }
            // On the overloaded server the SLO inversion must hold *despite*
            // the pressure: bulk absorbs the shedding and the queueing, so
            // the deadline class keeps a strictly lower p99.
            if c.layers >= 4 && c.overload_deadline_p99_ms >= c.overload_bulk_p99_ms {
                eprintln!(
                    "error: {} overload-trace deadline p99 ({:.2} ms) is not \
                     below bulk p99 ({:.2} ms)",
                    r.model, c.overload_deadline_p99_ms, c.overload_bulk_p99_ms
                );
                ok = false;
            }
        }
        // Overload shedding is structural (a small bulk-class bound vs
        // gap-free arrivals), so it gates in smoke mode too: a multi-layer
        // trace that outruns one worker by construction must shed bulk
        // work — zero sheds means the load-shedding path is dead.
        if c.layers >= 4 && c.overload_requests > 0 && c.overload_shed == 0 {
            eprintln!(
                "error: {} overload trace shed no bulk work across {} gap-free \
                 arrivals against a bounded bulk class",
                r.model, c.overload_requests
            );
            ok = false;
        }
        // Live-update gates — deterministic (counter- and outcome-based),
        // so they apply in smoke mode too: swaps must never fail an accepted
        // request (zero downtime), and the delta re-pack must move strictly
        // fewer bytes than full rebuilds of the same plans.
        if c.update_swaps > 0 {
            if c.update_failed_requests > 0 {
                eprintln!(
                    "error: {} live-update trace failed {} accepted requests \
                     across {} swaps (zero-downtime gate)",
                    r.model, c.update_failed_requests, c.update_swaps
                );
                ok = false;
            }
            if c.repack_bytes_ratio <= 0.0 || c.repack_bytes_ratio >= 1.0 {
                eprintln!(
                    "error: {} delta re-pack moved {:.3}x the full-rebuild \
                     bytes (must land strictly inside (0, 1))",
                    r.model, c.repack_bytes_ratio
                );
                ok = false;
            }
        }
        // Replicated-serving gates — the replica loss is scripted through
        // the deterministic admin API, so they apply in smoke mode too.
        if c.replica_count > 0 {
            if c.replica_count < 2 {
                eprintln!(
                    "error: {} replicated sub-trace ran {} replica(s); the \
                     failover path needs at least 2",
                    r.model, c.replica_count
                );
                ok = false;
            }
            // Every accepted ticket must resolve: Ok and bit-identical to
            // the single-engine oracle, or the typed degraded-mode Bulk
            // shed. Anything else is a dropped request under replica loss.
            if c.replica_failed_requests > 0 {
                eprintln!(
                    "error: {} replicated trace failed {} accepted requests \
                     under scripted replica loss (must be 0)",
                    r.model, c.replica_failed_requests
                );
                ok = false;
            }
            // The mid-trace kill targets the home replica of a layer the
            // second half of the trace revisits, so at least one dispatch
            // must have failed over.
            if c.replica_failovers == 0 {
                eprintln!(
                    "error: {} replicated trace recorded no failovers across \
                     a scripted home-replica kill",
                    r.model
                );
                ok = false;
            }
            // Degraded phase: one routable replica of three is below the
            // shed threshold, so Bulk must shed.
            if c.degraded_shed_rate <= 0.0 {
                eprintln!(
                    "error: {} degraded fleet shed no bulk work with 1 of {} \
                     replicas routable",
                    r.model, c.replica_count
                );
                ok = false;
            }
            // SLO ordering survives replication: deadline p99 at or under
            // bulk p99 on the replicated server (multi-layer traces only,
            // like the other per-class percentile gates).
            if !smoke && c.layers >= 4 && c.replica_deadline_p99_ms > c.replica_bulk_p99_ms {
                eprintln!(
                    "error: {} replicated deadline p99 ({:.2} ms) exceeds \
                     bulk p99 ({:.2} ms)",
                    r.model, c.replica_deadline_p99_ms, c.replica_bulk_p99_ms
                );
                ok = false;
            }
        }
        // Decode-session gates — bit-identity, token accounting, and the
        // scripted eviction/resume cycle are deterministic, so they apply
        // in smoke mode too; only the interleave-throughput ratio needs the
        // full-size trace.
        if let Some(d) = &r.decode {
            if !d.bit_identical {
                eprintln!(
                    "error: {} interleaved decode sessions are not \
                     bit-identical to the cold-oracle decode",
                    r.model
                );
                ok = false;
            }
            if d.lost_tokens > 0 {
                eprintln!(
                    "error: {} decode trace lost {} accepted tokens across \
                     {} sessions x {} steps (must be 0)",
                    r.model, d.lost_tokens, d.sessions, d.steps
                );
                ok = false;
            }
            if d.mean_interleave_width <= 1.0 {
                eprintln!(
                    "error: {} decode sessions never coalesced (mean \
                     interleave width {:.2} across {} concurrent sessions)",
                    r.model, d.mean_interleave_width, d.sessions
                );
                ok = false;
            }
            if d.evictions < 2 {
                eprintln!(
                    "error: {} decode trace recorded {} evictions; the \
                     mid-trace pressure script demands at least 2",
                    r.model, d.evictions
                );
                ok = false;
            }
            if d.resumed != d.evictions {
                eprintln!(
                    "error: {} decode trace resumed {} of {} evicted \
                     sessions (every eviction must be resumable)",
                    r.model, d.resumed, d.evictions
                );
                ok = false;
            }
            if !smoke && d.interleave_speedup() < 2.0 {
                eprintln!(
                    "error: {} interleaved decode ({:.1} tokens/s) did not \
                     reach 2x the serial one-session-at-a-time baseline \
                     ({:.1} tokens/s)",
                    r.model, d.tokens_s, d.serial_tokens_s
                );
                ok = false;
            }
        }
    }
    // Acceptance: at least one ≥4-layer mixed-width workload must strictly
    // beat the zero-window configuration on aggregate throughput.
    if !smoke {
        let best = results
            .iter()
            .filter(|r| r.continuous.layers >= 4 && r.continuous.requests > 0)
            .map(|r| r.continuous.window_speedup())
            .fold(0.0f64, f64::max);
        if best <= 1.0 {
            eprintln!(
                "error: no >=4-layer workload beat the zero-window baseline \
                 (best windowed speedup {best:.2}x)"
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().collect();
    let mut experiment = "all".to_string();
    let mut bench_kernels_mode = false;
    let mut bench_serving_mode = false;
    let mut smoke = false;
    let mut workers: Option<usize> = None;
    let mut bench_output = "BENCH_kernels.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--experiment" | "-e" => {
                if i + 1 >= args.len() {
                    eprintln!("error: --experiment requires a value");
                    return ExitCode::FAILURE;
                }
                experiment = args[i + 1].clone();
                i += 2;
            }
            "--bench-kernels" => {
                bench_kernels_mode = true;
                i += 1;
            }
            "--bench-serving" => {
                bench_serving_mode = true;
                i += 1;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--workers" => {
                if i + 1 >= args.len() {
                    eprintln!("error: --workers requires a value");
                    return ExitCode::FAILURE;
                }
                match args[i + 1].parse::<usize>() {
                    Ok(n) if n > 0 => workers = Some(n),
                    _ => {
                        eprintln!("error: --workers requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--bench-output" => {
                if i + 1 >= args.len() {
                    eprintln!("error: --bench-output requires a value");
                    return ExitCode::FAILURE;
                }
                bench_output = args[i + 1].clone();
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--experiment fig1|fig2|fig6|table1|ablation|analysis|headline|all]\n\
                     \x20      repro --bench-kernels [--smoke] [--bench-output BENCH_kernels.json]\n\
                     \x20      repro --bench-serving [--smoke] [--workers N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if bench_kernels_mode {
        return run_bench_kernels(&bench_output, smoke);
    }
    if bench_serving_mode {
        return run_bench_serving(smoke, workers);
    }
    if smoke {
        eprintln!("error: --smoke requires --bench-kernels or --bench-serving");
        return ExitCode::FAILURE;
    }
    if workers.is_some() {
        eprintln!("error: --workers requires --bench-serving");
        return ExitCode::FAILURE;
    }

    match experiment.as_str() {
        "fig1" => print_fig1(),
        "fig2" => print_fig2(),
        "fig6" => print_fig6(),
        "headline" => print_headline(),
        "table1" => print_table1(),
        "ablation" => print_ablation(),
        "analysis" => print_analysis(),
        "all" => {
            print_analysis();
            print_fig1();
            print_fig2();
            print_headline();
            print_fig6();
            print_table1();
            print_ablation();
        }
        other => {
            eprintln!("error: unknown experiment {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
