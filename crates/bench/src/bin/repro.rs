//! `repro` — regenerates the paper's tables and figures from the command line.
//!
//! ```text
//! repro [--experiment fig1|fig2|fig6|table1|ablation|analysis|headline|all]
//! ```
//!
//! With no arguments every experiment is run. The output is plain text, one section
//! per experiment, mirroring the rows/series the paper reports.

use gpu_sim::GpuArch;
use shfl_bench::experiments::{ablation, analysis, fig1, fig2, fig6, table1};
use std::env;
use std::process::ExitCode;

fn print_fig1() {
    for arch in GpuArch::all() {
        println!("[{}]", arch);
        println!("{}", fig1::to_table(&fig1::run(&arch)));
    }
}

fn print_fig2() {
    println!("{}", fig2::to_table(&fig2::run()));
}

fn print_fig6() {
    println!("{}", fig6::to_table(&fig6::run(false)));
}

fn print_headline() {
    println!("Headline: Shfl-BW speedup on Transformer GEMM layers at 75% sparsity");
    println!("(paper reports 1.81x on V100, 4.18x on T4, 1.90x on A100)");
    for (gpu, speedup) in fig6::headline_transformer_speedups() {
        println!("  {gpu:5}: {speedup:.2}x");
    }
    println!();
}

fn print_table1() {
    println!("{}", table1::to_table(&table1::run()));
}

fn print_ablation() {
    println!(
        "{}",
        ablation::to_table(
            &ablation::shuffle_overhead(),
            &ablation::prefetch_ablation(),
            &ablation::vector_size_sweep(),
        )
    );
}

fn print_analysis() {
    println!("{}", analysis::to_table(&analysis::run()));
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().collect();
    let mut experiment = "all".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--experiment" | "-e" => {
                if i + 1 >= args.len() {
                    eprintln!("error: --experiment requires a value");
                    return ExitCode::FAILURE;
                }
                experiment = args[i + 1].clone();
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--experiment fig1|fig2|fig6|table1|ablation|analysis|headline|all]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    match experiment.as_str() {
        "fig1" => print_fig1(),
        "fig2" => print_fig2(),
        "fig6" => print_fig6(),
        "headline" => print_headline(),
        "table1" => print_table1(),
        "ablation" => print_ablation(),
        "analysis" => print_analysis(),
        "all" => {
            print_analysis();
            print_fig1();
            print_fig2();
            print_headline();
            print_fig6();
            print_table1();
            print_ablation();
        }
        other => {
            eprintln!("error: unknown experiment {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
