//! # shfl-bench — benchmark harness regenerating the paper's tables and figures
//!
//! Each experiment of the paper has a runner in [`experiments`] that produces typed
//! result rows and a plain-text table mirroring what the paper reports:
//!
//! | Experiment | Runner | Paper content |
//! |---|---|---|
//! | Figure 1 | [`experiments::fig1`] | SpMM throughput vs density, normalised to the CUDA-core dense GEMM |
//! | Figure 2 | [`experiments::fig2`] | GNMT accuracy–speedup trade-off on V100 |
//! | Figure 6 | [`experiments::fig6`] | Kernel speedup over dense for 3 GPUs × 3 models × sparsities × patterns |
//! | Table 1 | [`experiments::table1`] | Pruned-model quality per pattern at 80% / 90% sparsity |
//! | §6.2 ablations | [`experiments::ablation`] | Shuffle overhead, metadata prefetch, vector-size sweep |
//! | §3.2 analysis | [`experiments::analysis`] | Flexibility and operation-intensity comparison |
//!
//! The `repro` binary runs any subset (`repro --experiment fig6`), and one Criterion
//! bench per experiment wraps the same runners so `cargo bench` regenerates every
//! figure and table.
//!
//! Beyond the paper's figures, [`bench_kernels`] times the functional kernels
//! three ways — naive reference, cold blocked call, prepared plan — runs the
//! end-to-end model engines, and emits the `BENCH_kernels.json` v2 performance
//! trajectory (`repro --bench-kernels`); [`bench_serving`] drives the
//! bucketed serving stack through mixed-size request traces
//! (`repro --bench-serving`, plan-cache hit rate + latency percentiles);
//! [`report`] reads the JSON back in both the v1 and v2 schemas so the
//! trajectory stays comparable across PRs.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bench_kernels;
pub mod bench_serving;
pub mod experiments;
pub mod report;
pub mod synth;

/// Formats a floating-point speedup for the report tables.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    #[test]
    fn fmt_speedup_has_two_decimals() {
        assert_eq!(super::fmt_speedup(1.816), "1.82x");
    }
}
