//! Synthetic pattern-conforming weight generators.
//!
//! The kernel-speed experiments (Figures 1 and 6, the ablations) only need weight
//! matrices with the right *structure* and density — the actual values do not affect
//! the analytical profiles. These generators build such matrices directly, which is
//! much cheaper than running the full pruning search for every (layer, sparsity,
//! pattern) combination.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shfl_core::formats::{
    BalancedMatrix, BlockSparseMatrix, CsrMatrix, ShflBwMatrix, VectorWiseMatrix,
};
use shfl_core::matrix::DenseMatrix;

/// Rounds a dimension up to a multiple of `v` so every pattern granularity divides it.
/// The paper's layer shapes are already multiples of 32/64/128; this guards odd shapes
/// like the ResNet stem.
pub fn pad_to_multiple(dim: usize, v: usize) -> usize {
    dim.div_ceil(v) * v
}

/// A dense matrix with unstructured random sparsity at the given density.
pub fn unstructured_dense(seed: u64, m: usize, k: usize, density: f64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_fn(m, k, |_, _| {
        if rng.gen_bool(density.clamp(0.0, 1.0)) {
            rng.gen_range(-1.0f32..1.0)
        } else {
            0.0
        }
    })
}

/// A CSR matrix with unstructured random sparsity.
pub fn unstructured_csr(seed: u64, m: usize, k: usize, density: f64) -> CsrMatrix {
    CsrMatrix::from_dense(&unstructured_dense(seed, m, k, density))
}

/// A dense matrix with vector-wise structure (each group of `v` rows keeps the same
/// random subset of columns at the given density).
pub fn vector_wise_dense(seed: u64, m: usize, k: usize, v: usize, density: f64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = pad_to_multiple(m, v);
    let groups = m / v;
    let keep: Vec<Vec<bool>> = (0..groups)
        .map(|_| {
            (0..k)
                .map(|_| rng.gen_bool(density.clamp(0.0, 1.0)))
                .collect()
        })
        .collect();
    DenseMatrix::from_fn(m, k, |r, c| {
        if keep[r / v][c] {
            rng.gen_range(-1.0f32..1.0)
        } else {
            0.0
        }
    })
}

/// A vector-wise matrix with the given structure parameters.
pub fn vector_wise_matrix(
    seed: u64,
    m: usize,
    k: usize,
    v: usize,
    density: f64,
) -> VectorWiseMatrix {
    VectorWiseMatrix::from_dense(&vector_wise_dense(seed, m, k, v, density), v)
        .expect("padded dimensions divide v")
}

/// A Shfl-BW matrix with the given structure parameters (identity grouping — the
/// kernel cost does not depend on which rows form a group, only on the group
/// structure and the row-index metadata, both of which are identical).
pub fn shfl_bw_matrix(seed: u64, m: usize, k: usize, v: usize, density: f64) -> ShflBwMatrix {
    let dense = vector_wise_dense(seed, m, k, v, density);
    let perm: Vec<usize> = (0..dense.rows()).collect();
    ShflBwMatrix::from_dense_with_permutation(&dense, &perm, v).expect("padded dimensions divide v")
}

/// A block-sparse matrix with random `v×v` blocks kept at the given density.
pub fn block_wise_matrix(
    seed: u64,
    m: usize,
    k: usize,
    v: usize,
    density: f64,
) -> BlockSparseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = pad_to_multiple(m, v);
    let k = pad_to_multiple(k, v);
    let block_cols = k / v;
    let keep: Vec<bool> = (0..(m / v) * block_cols)
        .map(|_| rng.gen_bool(density.clamp(0.0, 1.0)))
        .collect();
    let dense = DenseMatrix::from_fn(m, k, |r, c| {
        if keep[(r / v) * block_cols + c / v] {
            rng.gen_range(-1.0f32..1.0)
        } else {
            0.0
        }
    });
    BlockSparseMatrix::from_dense(&dense, v).expect("padded dimensions divide v")
}

/// A 2:4 balanced matrix (50% density).
pub fn balanced_matrix(seed: u64, m: usize, k: usize) -> BalancedMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = pad_to_multiple(k, 4);
    let dense = DenseMatrix::from_fn(m, k, |_, c| {
        // Keep two fixed-but-rotating positions per group of four.
        let pos = c % 4;
        let rot = (c / 4) % 3;
        if pos == rot || pos == (rot + 2) % 4 {
            rng.gen_range(-1.0f32..1.0)
        } else {
            0.0
        }
    });
    BalancedMatrix::from_dense(&dense, 2, 4).expect("structure is 2:4 by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_hit_the_requested_density() {
        let csr = unstructured_csr(1, 256, 256, 0.25);
        assert!((csr.density() - 0.25).abs() < 0.05);
        let vw = vector_wise_matrix(2, 256, 256, 32, 0.25);
        assert!((vw.density() - 0.25).abs() < 0.08);
        let bw = block_wise_matrix(3, 256, 256, 32, 0.25);
        assert!((bw.density() - 0.25).abs() < 0.15);
        let bal = balanced_matrix(4, 64, 64);
        assert!((bal.storage_density() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn padding_rounds_up() {
        assert_eq!(pad_to_multiple(100, 32), 128);
        assert_eq!(pad_to_multiple(128, 32), 128);
    }

    #[test]
    fn shfl_matrix_has_row_index_metadata() {
        let shfl = shfl_bw_matrix(5, 128, 128, 32, 0.25);
        assert_eq!(shfl.row_indices().len(), 128);
        assert_eq!(shfl.vector_size(), 32);
    }
}
