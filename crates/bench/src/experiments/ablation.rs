//! Kernel-design ablations (§6.2 "Comparing kernel designs" and §4).
//!
//! Three studies:
//!
//! 1. **Shuffle overhead** — Shfl-BW vs the authors' own vector-wise kernel at the
//!    same `V` (the paper reports 0.97–1.02×, i.e. the reordered write-back is free),
//! 2. **Metadata prefetch** — the Shfl-BW kernel with and without the bulk metadata
//!    prefetch / multi-stage pipeline of Algorithm 1,
//! 3. **Vector-size sweep** — throughput of the Shfl-BW kernel as `V` grows (the
//!    reason VectorSparse's `V ≤ 8` limits data reuse).

use crate::synth;
use gpu_sim::GpuArch;
use shfl_kernels::spmm::{
    shfl_bw_spmm_profile, shfl_bw_spmm_profile_with, vector_wise_spmm_profile, ShflBwKernelConfig,
    VectorWiseKernelConfig,
};

/// GEMM shape used by the ablations (a Transformer FFN layer at batch×seq = 1024).
pub const ABLATION_SHAPE: (usize, usize, usize) = (4096, 1024, 1024);
/// Weight density used by the ablations (75% sparsity).
pub const ABLATION_DENSITY: f64 = 0.25;

/// Result of the shuffle-overhead study on one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct ShuffleOverheadRow {
    /// GPU name.
    pub gpu: &'static str,
    /// Vector size.
    pub v: usize,
    /// Shfl-BW time divided by vector-wise time (≈ 1.0 means free shuffling).
    pub shfl_over_vw: f64,
}

/// Result of the metadata-prefetch study on one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchRow {
    /// GPU name.
    pub gpu: &'static str,
    /// Time with the paper's pipeline (µs).
    pub with_prefetch_us: f64,
    /// Time with the naive single-buffer pipeline (µs).
    pub without_prefetch_us: f64,
}

/// Result of the vector-size sweep on one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSizeRow {
    /// GPU name.
    pub gpu: &'static str,
    /// Vector size.
    pub v: usize,
    /// Shfl-BW kernel time (µs).
    pub time_us: f64,
}

/// Runs the shuffle-overhead study (Shfl-BW vs vector-wise) for V ∈ {32, 64}.
pub fn shuffle_overhead() -> Vec<ShuffleOverheadRow> {
    let (m, n, k) = ABLATION_SHAPE;
    let mut rows = Vec::new();
    for arch in GpuArch::all() {
        for v in [32usize, 64] {
            let shfl = synth::shfl_bw_matrix(11, m, k, v, ABLATION_DENSITY);
            let vw = synth::vector_wise_matrix(11, m, k, v, ABLATION_DENSITY);
            let t_shfl = shfl_bw_spmm_profile(&arch, &shfl, n).time_us();
            let t_vw =
                vector_wise_spmm_profile(&arch, &vw, n, &VectorWiseKernelConfig::ours()).time_us();
            rows.push(ShuffleOverheadRow {
                gpu: arch.name,
                v,
                shfl_over_vw: t_shfl / t_vw,
            });
        }
    }
    rows
}

/// Runs the metadata-prefetch study.
pub fn prefetch_ablation() -> Vec<PrefetchRow> {
    let (m, n, k) = ABLATION_SHAPE;
    let mut rows = Vec::new();
    for arch in GpuArch::all() {
        let shfl = synth::shfl_bw_matrix(13, m, k, 64, ABLATION_DENSITY);
        let with = shfl_bw_spmm_profile_with(&arch, &shfl, n, &ShflBwKernelConfig::paper_default());
        let without =
            shfl_bw_spmm_profile_with(&arch, &shfl, n, &ShflBwKernelConfig::without_prefetch());
        rows.push(PrefetchRow {
            gpu: arch.name,
            with_prefetch_us: with.time_us(),
            without_prefetch_us: without.time_us(),
        });
    }
    rows
}

/// Runs the vector-size sweep for V ∈ {8, 16, 32, 64, 128}.
pub fn vector_size_sweep() -> Vec<VectorSizeRow> {
    let (m, n, k) = ABLATION_SHAPE;
    let mut rows = Vec::new();
    for arch in GpuArch::all() {
        for v in [8usize, 16, 32, 64, 128] {
            let shfl = synth::shfl_bw_matrix(17, m, k, v, ABLATION_DENSITY);
            rows.push(VectorSizeRow {
                gpu: arch.name,
                v,
                time_us: shfl_bw_spmm_profile(&arch, &shfl, n).time_us(),
            });
        }
    }
    rows
}

/// Formats all three studies as one report.
pub fn to_table(
    shuffle: &[ShuffleOverheadRow],
    prefetch: &[PrefetchRow],
    sweep: &[VectorSizeRow],
) -> String {
    let mut out = String::from("Kernel-design ablations (4096x1024x1024 GEMM, 75% sparsity)\n");
    out.push_str("\n(a) Row-shuffle overhead: Shfl-BW time / vector-wise time\n");
    for r in shuffle {
        out.push_str(&format!(
            "  {:5} V={:3}: {:.3}\n",
            r.gpu, r.v, r.shfl_over_vw
        ));
    }
    out.push_str("\n(b) Metadata prefetch (Algorithm 1) vs naive pipeline\n");
    for r in prefetch {
        out.push_str(&format!(
            "  {:5}: with prefetch {:8.2} us, without {:8.2} us ({:.2}x slower)\n",
            r.gpu,
            r.with_prefetch_us,
            r.without_prefetch_us,
            r.without_prefetch_us / r.with_prefetch_us
        ));
    }
    out.push_str("\n(c) Vector-size sweep (Shfl-BW kernel time)\n");
    for r in sweep {
        out.push_str(&format!(
            "  {:5} V={:3}: {:8.2} us\n",
            r.gpu, r.v, r.time_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_overhead_is_within_the_papers_band() {
        for row in shuffle_overhead() {
            assert!(
                (0.95..=1.10).contains(&row.shfl_over_vw),
                "{} V={}: ratio {:.3} outside 0.95-1.10",
                row.gpu,
                row.v,
                row.shfl_over_vw
            );
        }
    }

    #[test]
    fn prefetch_always_helps() {
        for row in prefetch_ablation() {
            assert!(
                row.without_prefetch_us > row.with_prefetch_us,
                "{}: prefetch did not help",
                row.gpu
            );
        }
    }

    #[test]
    fn throughput_improves_with_vector_size() {
        let sweep = vector_size_sweep();
        for arch in ["V100", "T4", "A100"] {
            let times: Vec<f64> = sweep
                .iter()
                .filter(|r| r.gpu == arch)
                .map(|r| r.time_us)
                .collect();
            assert!(
                times.first().unwrap() > times.last().unwrap(),
                "{arch}: V=128 should be faster than V=8"
            );
        }
    }

    #[test]
    fn report_contains_all_sections() {
        let table = to_table(
            &shuffle_overhead(),
            &prefetch_ablation(),
            &vector_size_sweep(),
        );
        assert!(table.contains("(a)") && table.contains("(b)") && table.contains("(c)"));
    }
}
