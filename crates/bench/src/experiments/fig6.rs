//! Figure 6: kernel speedup over the dense baseline for 3 GPUs × 3 models ×
//! sparsity levels × sparsity patterns.
//!
//! This is the paper's main kernel-performance result. The headline numbers it quotes
//! in the abstract — accelerating the computation-intensive layers of Transformer by
//! 1.81×, 4.18× and 1.90× on V100, T4 and A100 at 75% sparsity — are the Shfl-BW
//! entries of this figure.

use crate::experiments::speedup::{model_speedup, KernelChoice};
use gpu_sim::GpuArch;
use shfl_models::workload::DnnModel;

/// One bar of the Figure 6 grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// GPU name.
    pub gpu: &'static str,
    /// Model name.
    pub model: &'static str,
    /// Weight sparsity.
    pub sparsity: f64,
    /// Kernel / pattern label.
    pub kernel: String,
    /// Speedup over the dense tensor-core baseline (`None` when the kernel is not
    /// available for this GPU / sparsity, e.g. 2:4 off 50%).
    pub speedup: Option<f64>,
}

/// Sparsity levels of the paper's Figure 6.
pub fn sparsities() -> Vec<f64> {
    vec![0.50, 0.75, 0.85, 0.95]
}

/// Batch / sequence configuration used for the kernel shapes.
pub const BATCH: usize = 8;
/// Sequence length for the sequence models.
pub const SEQ_LEN: usize = 128;

/// Runs the full Figure 6 grid. `quick` restricts the sweep to one sparsity (75%) and
/// the Shfl-BW / dense kernels only, for use in unit tests.
pub fn run(quick: bool) -> Vec<Fig6Row> {
    let archs = GpuArch::all();
    let models = DnnModel::all();
    let sparsity_list = if quick { vec![0.75] } else { sparsities() };

    let mut rows = Vec::new();
    for arch in &archs {
        let kernel_set = if quick {
            vec![KernelChoice::ShflBw(64)]
        } else {
            KernelChoice::figure6_set(arch)
        };
        for model in models {
            for &sparsity in &sparsity_list {
                for kernel in &kernel_set {
                    let speedup = model_speedup(arch, model, BATCH, SEQ_LEN, sparsity, *kernel);
                    rows.push(Fig6Row {
                        gpu: arch.name,
                        model: model.name(),
                        sparsity,
                        kernel: kernel.label(),
                        speedup,
                    });
                }
            }
        }
    }
    rows
}

/// Formats the grid as a text table grouped by GPU and model.
pub fn to_table(rows: &[Fig6Row]) -> String {
    let mut out = String::from(
        "Figure 6: speedup over the dense baseline (3 GPUs x 3 models x sparsity x pattern)\n",
    );
    let mut current_header = String::new();
    for r in rows {
        let header = format!("--- {} / {} ---", r.gpu, r.model);
        if header != current_header {
            out.push_str(&header);
            out.push('\n');
            current_header = header;
        }
        match r.speedup {
            Some(s) => out.push_str(&format!(
                "  {:24} @ {:3.0}% sparsity: {:6.2}x\n",
                r.kernel,
                r.sparsity * 100.0,
                s
            )),
            None => out.push_str(&format!(
                "  {:24} @ {:3.0}% sparsity:    n/a\n",
                r.kernel,
                r.sparsity * 100.0
            )),
        }
    }
    out
}

/// The headline Shfl-BW speedups at 75% sparsity for the Transformer GEMM layers
/// (best of V=32/64), in the paper's GPU order (V100, T4, A100). The paper reports
/// 1.81 / 4.18 / 1.90.
pub fn headline_transformer_speedups() -> Vec<(String, f64)> {
    GpuArch::all()
        .into_iter()
        .map(|arch| {
            let best = [32usize, 64]
                .iter()
                .filter_map(|&v| {
                    model_speedup(
                        &arch,
                        DnnModel::Transformer,
                        BATCH,
                        SEQ_LEN,
                        0.75,
                        KernelChoice::ShflBw(v),
                    )
                })
                .fold(0.0f64, f64::max);
            (arch.name.to_string(), best)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_has_one_row_per_gpu_model() {
        let rows = run(true);
        assert_eq!(rows.len(), 3 * 3);
        assert!(rows.iter().all(|r| r.speedup.is_some()));
    }

    #[test]
    fn headline_shfl_bw_beats_dense_everywhere_and_t4_wins() {
        let headline = headline_transformer_speedups();
        assert_eq!(headline.len(), 3);
        for (gpu, speedup) in &headline {
            assert!(
                *speedup > 1.0,
                "{gpu}: headline speedup {speedup:.2} not > 1"
            );
        }
        let v100 = headline[0].1;
        let t4 = headline[1].1;
        let a100 = headline[2].1;
        // The paper's qualitative finding: the T4 speedup is the largest of the three.
        assert!(t4 > v100, "T4 {t4:.2} should exceed V100 {v100:.2}");
        assert!(t4 > a100, "T4 {t4:.2} should exceed A100 {a100:.2}");
    }

    #[test]
    fn table_formats_na_for_unavailable_kernels() {
        let rows = vec![Fig6Row {
            gpu: "V100",
            model: "GNMT",
            sparsity: 0.75,
            kernel: "Balanced 2in4".to_string(),
            speedup: None,
        }];
        let table = to_table(&rows);
        assert!(table.contains("n/a"));
    }
}
