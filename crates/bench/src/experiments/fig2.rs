//! Figure 2: accuracy–speedup trade-off of GNMT on V100.
//!
//! Each point is a (BLEU, speedup-over-dense) pair for one pattern at one sparsity.
//! The paper's qualitative claims: unstructured sparsity never reaches practical
//! speedup (x < 1) even though its BLEU is the best; Shfl-BW reaches 2–3.5× speedup
//! with a small BLEU drop; larger `V` trades a little accuracy for more speed; and
//! Shfl-BW dominates plain vector-wise pruning.

use crate::experiments::speedup::{model_speedup, KernelChoice};
use gpu_sim::GpuArch;
use shfl_core::SparsePattern;
use shfl_models::accuracy::AccuracyModel;
use shfl_models::workload::DnnModel;

/// One point of the trade-off curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Point {
    /// Pattern label (legend entry).
    pub label: String,
    /// Weight sparsity.
    pub sparsity: f64,
    /// Proxy BLEU score of the pruned GNMT model.
    pub bleu: f64,
    /// Kernel speedup over the dense tensor-core baseline on V100.
    pub speedup: f64,
}

/// Batch size used for the GNMT kernel shapes (decoder-style inference batch).
const BATCH: usize = 128;

/// Runs the Figure 2 sweep (GNMT on V100, sparsity 80% → 90%).
pub fn run() -> Vec<Fig2Point> {
    let arch = GpuArch::v100();
    let proxy = AccuracyModel::new(DnnModel::Gnmt);
    let sparsities = [0.80, 0.85, 0.90];
    let mut points = Vec::new();

    let configs: Vec<(String, SparsePattern, KernelChoice)> = vec![
        (
            "Unstructured".to_string(),
            SparsePattern::Unstructured,
            KernelChoice::Sputnik,
        ),
        (
            "Vector-wise V=32".to_string(),
            SparsePattern::VectorWise { v: 32 },
            KernelChoice::VectorWise(32),
        ),
        (
            "Shfl-BW V=32".to_string(),
            SparsePattern::ShflBw { v: 32 },
            KernelChoice::ShflBw(32),
        ),
        (
            "Shfl-BW V=64".to_string(),
            SparsePattern::ShflBw { v: 64 },
            KernelChoice::ShflBw(64),
        ),
        (
            "Shfl-BW V=128".to_string(),
            SparsePattern::ShflBw { v: 128 },
            KernelChoice::ShflBw(128),
        ),
    ];

    for (label, pattern, kernel) in &configs {
        for &sparsity in &sparsities {
            let bleu = proxy.evaluate(*pattern, sparsity);
            let speedup =
                model_speedup(&arch, DnnModel::Gnmt, BATCH, 1, sparsity, *kernel).unwrap_or(0.0);
            points.push(Fig2Point {
                label: label.clone(),
                sparsity,
                bleu,
                speedup,
            });
        }
    }
    points
}

/// Formats the points as a text table.
pub fn to_table(points: &[Fig2Point]) -> String {
    let mut out =
        String::from("Figure 2: GNMT accuracy-speedup trade-off on V100 (sparsity 80%-90%)\n");
    out.push_str("pattern            sparsity   BLEU   speedup-over-dense\n");
    for p in points {
        out.push_str(&format!(
            "{:18} {:7.0}%  {:5.2}  {:8.2}x\n",
            p.label,
            p.sparsity * 100.0,
            p.bleu,
            p.speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(points: &'a [Fig2Point], label: &str, sparsity: f64) -> &'a Fig2Point {
        points
            .iter()
            .find(|p| p.label == label && (p.sparsity - sparsity).abs() < 1e-9)
            .expect("point exists")
    }

    #[test]
    fn figure2_qualitative_claims_hold() {
        let points = run();

        // Unstructured sparsity has the best BLEU but no practical speedup.
        let unstructured = find(&points, "Unstructured", 0.8);
        let shfl32 = find(&points, "Shfl-BW V=32", 0.8);
        assert!(unstructured.bleu >= shfl32.bleu);
        assert!(unstructured.speedup < 1.0);

        // Shfl-BW achieves practical speedup with a small BLEU drop (the paper
        // measures a few tenths of a BLEU point; the proxy stays within ~1.5).
        assert!(shfl32.speedup > 1.0);
        assert!(unstructured.bleu - shfl32.bleu < 1.5);

        // Larger V is faster.
        let shfl128 = find(&points, "Shfl-BW V=128", 0.8);
        assert!(shfl128.speedup > shfl32.speedup);

        // Shfl-BW dominates vector-wise at the same V: at least as fast, better BLEU.
        let vw32 = find(&points, "Vector-wise V=32", 0.8);
        assert!(shfl32.bleu > vw32.bleu);
        assert!(shfl32.speedup > 0.95 * vw32.speedup);

        // More sparsity brings more speed and less BLEU.
        let shfl32_90 = find(&points, "Shfl-BW V=32", 0.9);
        assert!(shfl32_90.speedup > shfl32.speedup);
        assert!(shfl32_90.bleu < shfl32.bleu);
    }

    #[test]
    fn table_lists_every_point() {
        let points = run();
        let table = to_table(&points);
        assert_eq!(table.lines().count(), points.len() + 2);
    }
}
