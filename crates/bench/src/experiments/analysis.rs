//! §3.2 analysis: flexibility (candidate counting) and computation efficiency
//! (operation intensity) of the sparsity patterns.
//!
//! Reproduces the two analytical arguments of the paper: the row-shuffle multiplier
//! `M!/(V!)^(M/V)` (which already exceeds `e^700` at `M = 512`, `V = 128`) and the
//! `√α · Reuse_dense` vs `Reuse_dense` data-reuse comparison.

use shfl_core::analysis::{
    compare_patterns, dense_max_reuse, ln_row_shuffle_candidates, PatternAnalysis,
};
use shfl_core::SparsePattern;

/// Register budget (bytes per threadblock) used for the reuse analysis — the paper's
/// `Size_regfile` with fp32 accumulators.
pub const REGFILE_BYTES: usize = 256 * 1024;

/// The result of the §3.2 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Per-pattern flexibility / reuse rows at the evaluated configuration.
    pub rows: Vec<PatternAnalysis>,
    /// `ln` of the paper's example row-shuffle multiplier (M = 512, V = 128).
    pub paper_example_ln_multiplier: f64,
    /// Dense data-reuse bound (FLOP/byte) for the register budget.
    pub dense_reuse: f64,
}

/// Runs the comparison on a 1024×1024 weight matrix at 25% density.
pub fn run() -> AnalysisReport {
    let patterns = [
        SparsePattern::Unstructured,
        SparsePattern::Balanced { m: 2, n: 4 },
        SparsePattern::BlockWise { v: 32 },
        SparsePattern::VectorWise { v: 32 },
        SparsePattern::ShflBw { v: 32 },
        SparsePattern::ShflBw { v: 64 },
        SparsePattern::ShflBw { v: 128 },
    ];
    AnalysisReport {
        rows: compare_patterns(&patterns, 1024, 1024, 0.25, REGFILE_BYTES),
        paper_example_ln_multiplier: ln_row_shuffle_candidates(512, 128),
        dense_reuse: dense_max_reuse(REGFILE_BYTES),
    }
}

/// Formats the report as a text table.
pub fn to_table(report: &AnalysisReport) -> String {
    let mut out = String::from(
        "Section 3.2 analysis: flexibility and data reuse (1024x1024 weights, 25% density)\n",
    );
    out.push_str(&format!(
        "dense reuse bound: {:.1} FLOP/byte; paper example ln(M!/(V!)^(M/V)) at M=512,V=128: {:.0} (> 700)\n",
        report.dense_reuse, report.paper_example_ln_multiplier
    ));
    out.push_str("pattern          ln(candidates)   max reuse (FLOP/byte)\n");
    for row in &report.rows {
        out.push_str(&format!(
            "{:16} {:14.0}   {:10.1}\n",
            row.pattern.label(),
            row.ln_candidates,
            row.max_reuse_flop_per_byte
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_exceeds_e_700() {
        assert!(run().paper_example_ln_multiplier > 700.0);
    }

    #[test]
    fn shfl_bw_is_more_flexible_than_vw_and_bw_with_equal_reuse() {
        let report = run();
        let get = |label: &str| {
            report
                .rows
                .iter()
                .find(|r| r.pattern.label() == label)
                .unwrap()
                .clone()
        };
        let shfl = get("Shfl-BW,V=32");
        let vw = get("VW,V=32");
        let bw = get("BW,V=32");
        assert!(shfl.ln_candidates > vw.ln_candidates);
        assert!(vw.ln_candidates > bw.ln_candidates);
        assert!((shfl.max_reuse_flop_per_byte - bw.max_reuse_flop_per_byte).abs() < 1e-9);
        // Unstructured is the most flexible of all.
        let un = get("unstructured");
        assert!(un.ln_candidates > shfl.ln_candidates);
    }

    #[test]
    fn larger_v_buys_more_reuse() {
        let report = run();
        let reuse = |label: &str| {
            report
                .rows
                .iter()
                .find(|r| r.pattern.label() == label)
                .unwrap()
                .max_reuse_flop_per_byte
        };
        assert!(reuse("Shfl-BW,V=128") > reuse("Shfl-BW,V=64"));
        assert!(reuse("Shfl-BW,V=64") > reuse("Shfl-BW,V=32"));
        assert!(reuse("Shfl-BW,V=128") <= report.dense_reuse + 1e-9);
    }

    #[test]
    fn table_mentions_the_dense_bound() {
        let report = run();
        assert!(to_table(&report).contains("dense reuse bound"));
    }
}
