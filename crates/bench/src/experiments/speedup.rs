//! Model-level kernel speedup computation shared by Figures 1, 2 and 6.
//!
//! The paper reports speedups of sparse kernels over the dense baseline aggregated
//! over the computation-intensive (linear and convolution) layers of each model
//! (§6.1: "We only calculate the speedup to the linear and 2D convolution layers …
//! we use the shapes in real model"). This module reproduces that aggregation: every
//! prunable layer shape is instantiated with a synthetic pattern-conforming weight
//! matrix, profiled with the chosen kernel, and the per-layer times are summed with
//! their multiplicities.

use crate::synth;
use gpu_sim::GpuArch;
use shfl_core::tiling;
use shfl_kernels::gemm::{dense_gemm_cuda_core_profile, dense_gemm_profile};
use shfl_kernels::spmm::{
    balanced_spmm_profile, block_wise_spmm_profile, cuda_core_spmm_profile,
    cusparse_csr_spmm_profile, shfl_bw_spmm_profile, vector_wise_spmm_profile,
    VectorWiseKernelConfig,
};
use shfl_models::workload::{model_workload, DnnModel, Layer};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// The kernel (and therefore sparsity pattern) used for the sparse side of a speedup
/// measurement. The labels match the legend of the paper's Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelChoice {
    /// cuBLAS/cuDNN dense tensor-core baseline (speedup 1.0 by definition).
    Dense,
    /// Dense GEMM on CUDA cores (the Figure 1 normalisation baseline).
    DenseCudaCore,
    /// cuSPARSE unstructured CSR SpMM.
    CusparseCsr,
    /// Sputnik unstructured CSR SpMM.
    Sputnik,
    /// VectorSparse: vector-wise kernel with `V = 8`.
    VectorSparse,
    /// TileWise: multi-stream vector-wise kernel with `V = 128`.
    TileWise,
    /// cuSPARSE block-wise SpMM with block size `V`.
    BlockWise(usize),
    /// The authors' vector-wise kernel with vector size `V`.
    VectorWise(usize),
    /// The paper's Shfl-BW kernel with vector size `V`.
    ShflBw(usize),
    /// cuSPARSELt balanced 2:4 kernel (A100 only, 50% sparsity only).
    Balanced2in4,
}

impl KernelChoice {
    /// The label used in the paper's Figure 6 legend.
    pub fn label(&self) -> String {
        match self {
            KernelChoice::Dense => "Dense".to_string(),
            KernelChoice::DenseCudaCore => "Dense (CUDA-core)".to_string(),
            KernelChoice::CusparseCsr => "cuSPARSE".to_string(),
            KernelChoice::Sputnik => "Unstructured (Sputnik)".to_string(),
            KernelChoice::VectorSparse => "VectorSparse (VW,V=8)".to_string(),
            KernelChoice::TileWise => "TileWise (VW,V=128)".to_string(),
            KernelChoice::BlockWise(v) => format!("BW,V={v}"),
            KernelChoice::VectorWise(v) => format!("VW,V={v}"),
            KernelChoice::ShflBw(v) => format!("Shfl-BW,V={v}"),
            KernelChoice::Balanced2in4 => "Balanced 2in4".to_string(),
        }
    }

    /// The Figure 6 kernel set evaluated on a given architecture (the balanced 2:4
    /// kernel only exists on Ampere).
    pub fn figure6_set(arch: &GpuArch) -> Vec<KernelChoice> {
        let mut set = vec![
            KernelChoice::CusparseCsr,
            KernelChoice::Sputnik,
            KernelChoice::VectorSparse,
            KernelChoice::TileWise,
            KernelChoice::BlockWise(32),
            KernelChoice::BlockWise(64),
            KernelChoice::VectorWise(32),
            KernelChoice::VectorWise(64),
            KernelChoice::ShflBw(32),
            KernelChoice::ShflBw(64),
        ];
        if arch.supports_sparse_tensor_core {
            set.push(KernelChoice::Balanced2in4);
        }
        set
    }
}

/// Layers of a model that the paper prunes: linear and convolution layers excluding
/// the embedding/softmax projection and the 3-channel stem, de-duplicated by GEMM
/// shape (multiplicities summed).
pub fn prunable_layers(model: DnnModel, batch: usize, seq_len: usize) -> Vec<Layer> {
    let mut by_shape: HashMap<(usize, usize, usize), Layer> = HashMap::new();
    for layer in model_workload(model, batch, seq_len) {
        if layer.name.contains("softmax") || layer.name.contains("stem") {
            continue;
        }
        let shape = layer.kind.gemm_shape();
        by_shape
            .entry(shape)
            .and_modify(|l| l.count += layer.count)
            .or_insert(layer);
    }
    let mut layers: Vec<Layer> = by_shape.into_values().collect();
    layers.sort_by_key(|l| std::cmp::Reverse(l.total_flops()));
    layers
}

fn shape_seed(m: usize, n: usize, k: usize, sparsity_pct: u64, tag: u64) -> u64 {
    let mut hasher = DefaultHasher::new();
    (m, n, k, sparsity_pct, tag).hash(&mut hasher);
    hasher.finish()
}

/// Simulated execution time (µs) of one layer (`count` applications of an `m×n×k`
/// GEMM/implicit-GEMM) with the chosen kernel at the given weight sparsity.
///
/// Returns `None` when the kernel does not exist on the architecture (balanced 2:4 on
/// pre-Ampere GPUs) or cannot express the sparsity (balanced 2:4 at anything other
/// than 50%).
pub fn layer_time_us(
    arch: &GpuArch,
    m: usize,
    n: usize,
    k: usize,
    count: usize,
    sparsity: f64,
    kernel: KernelChoice,
) -> Option<f64> {
    let density = (1.0 - sparsity).clamp(0.0, 1.0);
    let sparsity_pct = (sparsity * 100.0).round() as u64;
    let seed = shape_seed(m, n, k, sparsity_pct, 17);
    let time = match kernel {
        KernelChoice::Dense => dense_gemm_profile(arch, m, n, k).time_us(),
        KernelChoice::DenseCudaCore => dense_gemm_cuda_core_profile(arch, m, n, k).time_us(),
        KernelChoice::CusparseCsr => {
            let a = synth::unstructured_csr(seed, m, k, density);
            cusparse_csr_spmm_profile(arch, &a, n).time_us()
        }
        KernelChoice::Sputnik => {
            let a = synth::unstructured_csr(seed, m, k, density);
            cuda_core_spmm_profile(arch, &a, n).time_us()
        }
        KernelChoice::VectorSparse => {
            let a = synth::vector_wise_matrix(seed, m, k, 8, density);
            vector_wise_spmm_profile(arch, &a, n, &VectorWiseKernelConfig::vector_sparse())
                .time_us()
        }
        KernelChoice::TileWise => {
            let v = 128.min(tiling::TileConfig::dense_default().tm);
            let a = synth::vector_wise_matrix(seed, m, k, v, density);
            vector_wise_spmm_profile(arch, &a, n, &VectorWiseKernelConfig::tile_wise(8)).time_us()
        }
        KernelChoice::BlockWise(v) => {
            let a = synth::block_wise_matrix(seed, m, k, v, density);
            block_wise_spmm_profile(arch, &a, n).time_us()
        }
        KernelChoice::VectorWise(v) => {
            let a = synth::vector_wise_matrix(seed, m, k, v, density);
            vector_wise_spmm_profile(arch, &a, n, &VectorWiseKernelConfig::ours()).time_us()
        }
        KernelChoice::ShflBw(v) => {
            let a = synth::shfl_bw_matrix(seed, m, k, v, density);
            shfl_bw_spmm_profile(arch, &a, n).time_us()
        }
        KernelChoice::Balanced2in4 => {
            if !arch.supports_sparse_tensor_core || (sparsity - 0.5).abs() > 1e-6 {
                return None;
            }
            let a = synth::balanced_matrix(seed, m, k);
            balanced_spmm_profile(arch, &a, n).ok()?.time_us()
        }
    };
    Some(time * count as f64)
}

/// Speedup of the chosen sparse kernel over the dense tensor-core baseline, aggregated
/// over all prunable layers of the model.
///
/// Returns `None` when the kernel is unavailable for this architecture/sparsity.
pub fn model_speedup(
    arch: &GpuArch,
    model: DnnModel,
    batch: usize,
    seq_len: usize,
    sparsity: f64,
    kernel: KernelChoice,
) -> Option<f64> {
    let layers = prunable_layers(model, batch, seq_len);
    let mut dense_total = 0.0;
    let mut sparse_total = 0.0;
    for layer in &layers {
        let (m, n, k) = layer.kind.gemm_shape();
        dense_total += layer_time_us(arch, m, n, k, layer.count, sparsity, KernelChoice::Dense)?;
        sparse_total += layer_time_us(arch, m, n, k, layer.count, sparsity, kernel)?;
    }
    if sparse_total <= 0.0 {
        None
    } else {
        Some(dense_total / sparse_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prunable_layers_exclude_softmax_and_stem() {
        let gnmt = prunable_layers(DnnModel::Gnmt, 64, 32);
        assert!(gnmt.iter().all(|l| !l.name.contains("softmax")));
        let resnet = prunable_layers(DnnModel::Resnet50, 4, 0);
        assert!(resnet.iter().all(|l| !l.name.contains("stem")));
        assert!(!resnet.is_empty());
    }

    #[test]
    fn dedup_merges_repeated_shapes() {
        let layers = prunable_layers(DnnModel::Transformer, 4, 64);
        let shapes: Vec<_> = layers.iter().map(|l| l.kind.gemm_shape()).collect();
        let mut unique = shapes.clone();
        unique.dedup();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(shapes.len(), unique.len(), "shapes should be de-duplicated");
    }

    #[test]
    fn dense_speedup_is_one() {
        let arch = GpuArch::v100();
        let s = model_speedup(
            &arch,
            DnnModel::Transformer,
            1,
            32,
            0.75,
            KernelChoice::Dense,
        )
        .unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shfl_bw_beats_dense_at_75_percent_on_a_small_workload() {
        let arch = GpuArch::t4();
        let s = model_speedup(
            &arch,
            DnnModel::Transformer,
            1,
            32,
            0.75,
            KernelChoice::ShflBw(64),
        )
        .unwrap();
        assert!(s > 1.0, "Shfl-BW speedup {s:.2} should exceed 1.0");
    }

    #[test]
    fn balanced_is_unavailable_off_a100_or_off_50_percent() {
        let v100 = GpuArch::v100();
        assert!(model_speedup(
            &v100,
            DnnModel::Transformer,
            1,
            32,
            0.5,
            KernelChoice::Balanced2in4
        )
        .is_none());
        let a100 = GpuArch::a100();
        assert!(model_speedup(
            &a100,
            DnnModel::Transformer,
            1,
            32,
            0.75,
            KernelChoice::Balanced2in4
        )
        .is_none());
    }

    #[test]
    fn figure6_set_includes_balanced_only_on_a100() {
        assert!(KernelChoice::figure6_set(&GpuArch::a100()).contains(&KernelChoice::Balanced2in4));
        assert!(!KernelChoice::figure6_set(&GpuArch::v100()).contains(&KernelChoice::Balanced2in4));
    }

    #[test]
    fn labels_match_the_figure_legend() {
        assert_eq!(KernelChoice::ShflBw(64).label(), "Shfl-BW,V=64");
        assert_eq!(KernelChoice::BlockWise(32).label(), "BW,V=32");
        assert_eq!(KernelChoice::Balanced2in4.label(), "Balanced 2in4");
    }
}
