//! Table 1: quality of pruned models (BLEU / Top-1) per sparsity pattern at 80% and
//! 90% sparsity.
//!
//! The paper's table compares block-wise (V=32), vector-wise (V=32) and Shfl-BW
//! (V=32, V=64) pruning on Transformer, GNMT and ResNet-50. The reproduction runs the
//! real pattern-search algorithms on the accuracy proxy (see
//! `shfl_models::accuracy`); the orderings and gap sizes are the reproduced quantity.

use shfl_core::SparsePattern;
use shfl_models::accuracy::AccuracyModel;
use shfl_models::workload::DnnModel;

/// One row of Table 1 (one pattern at one sparsity, evaluated on all three models).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Weight sparsity.
    pub sparsity: f64,
    /// Pattern label as used in the paper.
    pub pattern: String,
    /// Proxy BLEU of the pruned Transformer.
    pub transformer_bleu: f64,
    /// Proxy BLEU of the pruned GNMT.
    pub gnmt_bleu: f64,
    /// Proxy Top-1 accuracy of the pruned ResNet-50.
    pub resnet_top1: f64,
}

/// Patterns evaluated by the paper's Table 1 at each sparsity level.
fn patterns_for(sparsity: f64) -> Vec<SparsePattern> {
    if (sparsity - 0.8).abs() < 1e-9 {
        vec![
            SparsePattern::BlockWise { v: 32 },
            SparsePattern::VectorWise { v: 32 },
            SparsePattern::ShflBw { v: 32 },
            SparsePattern::ShflBw { v: 64 },
        ]
    } else {
        vec![
            SparsePattern::VectorWise { v: 32 },
            SparsePattern::ShflBw { v: 32 },
            SparsePattern::ShflBw { v: 64 },
        ]
    }
}

/// Runs the Table 1 evaluation (80% and 90% sparsity).
pub fn run() -> Vec<Table1Row> {
    let transformer = AccuracyModel::new(DnnModel::Transformer);
    let gnmt = AccuracyModel::new(DnnModel::Gnmt);
    let resnet = AccuracyModel::new(DnnModel::Resnet50);

    let mut rows = Vec::new();
    for &sparsity in &[0.8, 0.9] {
        for pattern in patterns_for(sparsity) {
            rows.push(Table1Row {
                sparsity,
                pattern: pattern.label(),
                transformer_bleu: transformer.evaluate(pattern, sparsity),
                gnmt_bleu: gnmt.evaluate(pattern, sparsity),
                resnet_top1: resnet.evaluate(pattern, sparsity),
            });
        }
    }
    rows
}

/// Formats the rows as a text table shaped like the paper's Table 1.
pub fn to_table(rows: &[Table1Row]) -> String {
    let mut out = String::from("Table 1: quality of pruned models (proxy) per sparse pattern\n");
    out.push_str("sparsity  pattern        Transformer(BLEU)  GNMT(BLEU)  ResNet50(Top-1 %)\n");
    for r in rows {
        out.push_str(&format!(
            "{:7.0}%  {:13} {:18.2} {:11.2} {:18.2}\n",
            r.sparsity * 100.0,
            r.pattern,
            r.transformer_bleu,
            r.gnmt_bleu,
            r.resnet_top1
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [Table1Row], pattern: &str, sparsity: f64) -> &'a Table1Row {
        rows.iter()
            .find(|r| r.pattern == pattern && (r.sparsity - sparsity).abs() < 1e-9)
            .expect("row exists")
    }

    #[test]
    fn shfl_bw_beats_vw_and_bw_on_every_model_at_80_percent() {
        let rows = run();
        let bw = find(&rows, "BW,V=32", 0.8);
        let vw = find(&rows, "VW,V=32", 0.8);
        let shfl = find(&rows, "Shfl-BW,V=32", 0.8);
        assert!(shfl.transformer_bleu > vw.transformer_bleu);
        assert!(shfl.gnmt_bleu > vw.gnmt_bleu);
        assert!(shfl.resnet_top1 > vw.resnet_top1);
        assert!(vw.transformer_bleu > bw.transformer_bleu);
        assert!(vw.gnmt_bleu > bw.gnmt_bleu);
        assert!(vw.resnet_top1 > bw.resnet_top1);
    }

    #[test]
    fn gnmt_block_wise_collapse_is_reproduced() {
        // The paper's most striking Table 1 entry: GNMT BLEU collapses under
        // block-wise pruning (13.8 vs ~23-24 for the other patterns).
        let rows = run();
        let bw = find(&rows, "BW,V=32", 0.8);
        let shfl = find(&rows, "Shfl-BW,V=32", 0.8);
        assert!(
            shfl.gnmt_bleu - bw.gnmt_bleu > 2.0,
            "GNMT gap Shfl-BW {:.2} vs BW {:.2} too small",
            shfl.gnmt_bleu,
            bw.gnmt_bleu
        );
    }

    #[test]
    fn ninety_percent_is_worse_than_eighty_percent() {
        let rows = run();
        let s80 = find(&rows, "Shfl-BW,V=32", 0.8);
        let s90 = find(&rows, "Shfl-BW,V=32", 0.9);
        assert!(s90.transformer_bleu < s80.transformer_bleu);
        assert!(s90.gnmt_bleu < s80.gnmt_bleu);
        assert!(s90.resnet_top1 < s80.resnet_top1);
    }

    #[test]
    fn values_are_in_plausible_metric_ranges() {
        for r in run() {
            assert!(r.transformer_bleu > 20.0 && r.transformer_bleu < 29.0);
            assert!(r.gnmt_bleu > 5.0 && r.gnmt_bleu < 25.0);
            assert!(r.resnet_top1 > 60.0 && r.resnet_top1 < 77.0);
        }
    }

    #[test]
    fn table_has_seven_data_rows() {
        let rows = run();
        assert_eq!(rows.len(), 7);
        let table = to_table(&rows);
        assert_eq!(table.lines().count(), 9);
    }
}
