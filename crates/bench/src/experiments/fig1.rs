//! Figure 1: SpMM throughput vs density, normalised to the CUDA-core dense GEMM.
//!
//! The paper's motivating figure uses a single GEMM shape (`M/N/K = 2048/128/2048`)
//! and sweeps the weight density, plotting four curves: tensor-core dense, CUDA-core
//! dense (the normalisation baseline), CUDA-core sparse (Sputnik) and the paper's
//! tensor-core sparse kernel. The qualitative landmarks are the crossovers: CUDA-core
//! sparse passes CUDA-core dense around 65% sparsity (region A), passes tensor-core
//! dense only above ~95% (region B), while the tensor-core sparse kernel already wins
//! at moderate sparsity (region C).

use crate::experiments::speedup::{layer_time_us, KernelChoice};
use gpu_sim::GpuArch;

/// GEMM shape used by the paper's Figure 1.
pub const FIG1_SHAPE: (usize, usize, usize) = (2048, 128, 2048);

/// One density point of the Figure 1 sweep. All throughputs are normalised to the
/// CUDA-core dense GEMM (value 1.0), exactly like the paper's y-axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Weight density (non-zero ratio).
    pub density: f64,
    /// Tensor-core dense GEMM (constant across densities).
    pub tensor_core_dense: f64,
    /// CUDA-core dense GEMM (1.0 by definition).
    pub cuda_core_dense: f64,
    /// CUDA-core sparse SpMM (Sputnik-like).
    pub cuda_core_sparse: f64,
    /// Tensor-core sparse SpMM (the paper's Shfl-BW kernel, V = 64).
    pub tensor_core_sparse: f64,
}

/// Densities swept by the reproduction (the paper plots 2%–100% on a log axis).
pub fn densities() -> Vec<f64> {
    vec![0.02, 0.05, 0.10, 0.15, 0.25, 0.35, 0.50, 0.75, 1.00]
}

/// Runs the Figure 1 sweep on one architecture (the paper uses V100).
pub fn run(arch: &GpuArch) -> Vec<Fig1Row> {
    let (m, n, k) = FIG1_SHAPE;
    let cuda_dense_t = layer_time_us(arch, m, n, k, 1, 0.0, KernelChoice::DenseCudaCore)
        .expect("dense kernels always available");
    let tensor_dense_t = layer_time_us(arch, m, n, k, 1, 0.0, KernelChoice::Dense)
        .expect("dense kernels always available");

    densities()
        .into_iter()
        .map(|density| {
            let sparsity = 1.0 - density;
            let cuda_sparse_t = layer_time_us(arch, m, n, k, 1, sparsity, KernelChoice::Sputnik)
                .expect("CSR kernel always available");
            let tensor_sparse_t =
                layer_time_us(arch, m, n, k, 1, sparsity, KernelChoice::ShflBw(64))
                    .expect("Shfl-BW kernel always available");
            Fig1Row {
                density,
                tensor_core_dense: cuda_dense_t / tensor_dense_t,
                cuda_core_dense: 1.0,
                cuda_core_sparse: cuda_dense_t / cuda_sparse_t,
                tensor_core_sparse: cuda_dense_t / tensor_sparse_t,
            }
        })
        .collect()
}

/// Formats the sweep as a text table.
pub fn to_table(rows: &[Fig1Row]) -> String {
    let mut out = String::from(
        "Figure 1: SpMM throughput normalised to CUDA-core dense GEMM (M/N/K = 2048/128/2048)\n",
    );
    out.push_str("density  TC-dense  CC-dense  CC-sparse  TC-sparse(Shfl-BW)\n");
    for r in rows {
        out.push_str(&format!(
            "{:6.0}%  {:8.2}  {:8.2}  {:9.2}  {:18.2}\n",
            r.density * 100.0,
            r.tensor_core_dense,
            r.cuda_core_dense,
            r.cuda_core_sparse,
            r.tensor_core_sparse
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_landmarks_hold_on_v100() {
        let rows = run(&GpuArch::v100());
        let at = |d: f64| rows.iter().find(|r| (r.density - d).abs() < 1e-9).unwrap();

        // Tensor-core dense is well above CUDA-core dense.
        assert!(at(1.0).tensor_core_dense > 1.5);

        // Region A: at high density the CUDA-core sparse kernel is slower than the
        // CUDA-core dense GEMM; at low density it is faster, so a crossover exists.
        assert!(at(0.75).cuda_core_sparse < 1.0);
        assert!(at(0.05).cuda_core_sparse > 1.0);

        // Region B exists: there is a density range where the CUDA-core sparse kernel
        // already beats the CUDA-core dense GEMM but still trails the tensor-core
        // dense baseline (the paper's region between the two crossovers).
        assert!(rows
            .iter()
            .any(|r| { r.cuda_core_sparse > 1.0 && r.cuda_core_sparse < r.tensor_core_dense }));

        // Region C: the tensor-core sparse kernel beats the tensor-core dense baseline
        // already at 25% density (75% sparsity), the quality-acceptable regime.
        assert!(at(0.25).tensor_core_sparse > at(0.25).tensor_core_dense);

        // And throughput grows monotonically as density shrinks.
        assert!(at(0.05).tensor_core_sparse > at(0.5).tensor_core_sparse);
        assert!(at(0.02).cuda_core_sparse > at(0.25).cuda_core_sparse);
    }

    #[test]
    fn table_contains_every_density() {
        let rows = run(&GpuArch::v100());
        let table = to_table(&rows);
        assert!(table.contains("Figure 1"));
        assert_eq!(table.lines().count(), rows.len() + 2);
    }
}
