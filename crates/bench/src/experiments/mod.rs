//! Experiment runners, one per table / figure of the paper.

pub mod ablation;
pub mod analysis;
pub mod fig1;
pub mod fig2;
pub mod fig6;
pub mod speedup;
pub mod table1;

pub use speedup::{model_speedup, KernelChoice};
