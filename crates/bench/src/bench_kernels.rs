//! Wall-clock kernel benchmark: naive reference vs cold blocked call vs
//! prepared plan, plus end-to-end model inference.
//!
//! `repro --bench-kernels` times every functional kernel three ways in the
//! same run —
//!
//! * **naive**: the retained scalar reference path
//!   (`shfl_kernels::reference`),
//! * **blocked (cold)**: the public `*_execute` entry point, which builds a
//!   kernel plan for the single call and executes it (weight re-packing paid
//!   every call), and
//! * **prepared**: a plan built once outside the timer, executing repeatedly
//!   (the plan/execute split amortising the packing),
//!
//! — and runs the [`shfl_models::engine::ModelEngine`] end-to-end over
//! Transformer, GNMT and ResNet-50. Everything is written to
//! `BENCH_kernels.json` (schema **v2**, which adds the plan-build/prepared
//! columns, the git revision and the model throughput section; see
//! [`crate::report`] for the v1-compatible reader). The two headline entries
//! (1024³ dense GEMM and Shfl-BW SpMM at 70 % sparsity) carry a ≥5× speedup
//! target for naive-vs-blocked; the Shfl-BW headline additionally carries the
//! ≥1.5× prepared-vs-cold target. Each entry records whether all three paths
//! produced bit-identical outputs, so a perf regression and a correctness
//! drift both show up in the same artifact.
//!
//! The ResNet-50 model record additionally carries a `conv_implicit` section
//! comparing the implicit-GEMM conv plans against the retained
//! materialised-im2col baseline: wall-clock and images/s of both paths, the
//! transform bytes the implicit path reads, the im2col bytes it avoids, a
//! bit-identity flag against the cold oracle, and the counter-verified im2col
//! bytes charged during an implicit forward (gated to 0 by `repro`).

use crate::synth;
use gpu_sim::GpuArch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shfl_core::formats::{BlockSparseMatrix, CsrMatrix, VectorWiseMatrix};
use shfl_core::matrix::DenseMatrix;
use shfl_kernels::plan::{ConvPlan, GemmPlan, SpmmPlan};
use shfl_kernels::spmm::{
    balanced_spmm_execute, block_wise_spmm_execute, cuda_core_spmm_execute, shfl_bw_spmm_execute,
    vector_wise_spmm_execute,
};
use shfl_kernels::{conv, reference};
use shfl_models::engine::{EngineConfig, ModelEngine};
use shfl_models::DnnModel;
use std::time::Instant;

/// One benchmarked kernel: wall-clock of the naive, cold and prepared paths.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Kernel name (matches the functional kernel it exercises).
    pub kernel: String,
    /// Problem shape, e.g. `"1024x1024x1024"`.
    pub shape: String,
    /// Wall-clock of the naive reference path in milliseconds (best of
    /// [`REPEATS`] runs, same policy as the other paths so the ratios are
    /// comparable run-to-run).
    pub naive_ms: f64,
    /// Wall-clock of the cold blocked call (plan built per call) in
    /// milliseconds (best of [`REPEATS`] runs).
    pub blocked_ms: f64,
    /// Wall-clock of building the plan once, in milliseconds (best of
    /// [`REPEATS`] runs).
    pub plan_build_ms: f64,
    /// Wall-clock of one prepared execute in milliseconds (best of
    /// [`REPEATS`] runs on a plan built outside the timer).
    pub prepared_ms: f64,
    /// Whether all three paths produced bit-identical outputs.
    pub bit_identical: bool,
    /// Whether this entry carries the ≥5× naive-over-blocked acceptance
    /// target.
    pub headline: bool,
}

impl BenchResult {
    /// Naive-over-blocked wall-clock ratio (the v1 trajectory metric). The
    /// denominator is floored at 1 ns so a sub-clock-tick measurement yields a
    /// large finite ratio instead of `inf`/`NaN` (which would corrupt the
    /// JSON artifact).
    pub fn speedup(&self) -> f64 {
        self.naive_ms / self.blocked_ms.max(1e-6)
    }

    /// Cold-over-prepared wall-clock ratio: what one-time weight pre-packing
    /// buys per call (denominator floored like [`BenchResult::speedup`]).
    pub fn prepared_speedup(&self) -> f64 {
        self.blocked_ms / self.prepared_ms.max(1e-6)
    }
}

/// Implicit-GEMM vs materialised-im2col convolution numbers of one model
/// (recorded for ResNet-50, the conv-dominated workload).
#[derive(Debug, Clone)]
pub struct ConvImplicitBench {
    /// Bytes of the in-place layout buffer one implicit forward reads,
    /// summed over conv-layer repeat counts.
    pub input_bytes_read: u64,
    /// Bytes of materialisation the implicit path avoids per forward: the
    /// unfolded `K × N` f32 operand plus its fp16 staging copy (`2·K·N·4`),
    /// summed over conv-layer repeat counts.
    pub im2col_bytes_avoided: u64,
    /// Best wall-clock of one implicit-conv forward pass, ms.
    pub implicit_ms: f64,
    /// Best wall-clock of one materialised-im2col forward pass, ms.
    pub im2col_ms: f64,
    /// Functional throughput of the implicit path (images/s).
    pub implicit_images_s: f64,
    /// Functional throughput of the im2col baseline (images/s).
    pub im2col_images_s: f64,
    /// Whether the implicit outputs were bit-identical to the cold
    /// materialised-im2col oracle.
    pub bit_identical: bool,
    /// Bytes charged to the global im2col traffic counter during one
    /// implicit forward — the counter-verified proof that the implicit path
    /// materialises nothing (must be 0).
    pub im2col_bytes_on_implicit: u64,
}

impl ConvImplicitBench {
    /// Implicit-over-im2col wall-clock ratio (denominator floored like
    /// [`BenchResult::speedup`]).
    pub fn speedup(&self) -> f64 {
        self.im2col_ms / self.implicit_ms.max(1e-6)
    }
}

/// End-to-end numbers of one model on the prepared engine.
#[derive(Debug, Clone)]
pub struct ModelBenchResult {
    /// Model name (`Transformer`, `GNMT`, `ResNet50`).
    pub model: String,
    /// Batch size of the run.
    pub batch: usize,
    /// Sequence length (1 where not applicable).
    pub seq_len: usize,
    /// Number of prepared (unique) layers.
    pub layers: usize,
    /// One-time plan-phase cost in milliseconds.
    pub build_ms: f64,
    /// Wall-clock of one forward pass in milliseconds.
    pub forward_ms: f64,
    /// Functional-simulation throughput (items per second).
    pub throughput: f64,
    /// Modeled GPU throughput from the analytical profiles (items/second).
    pub modeled_throughput: f64,
    /// Throughput unit: `"tokens/s"` or `"images/s"`.
    pub unit: &'static str,
    /// Mixed-size serving-trace numbers ([`crate::bench_serving`]): hit rate,
    /// latency percentiles, bucketed-vs-cold throughput.
    pub serving: Option<crate::bench_serving::ServingBenchResult>,
    /// Implicit-GEMM vs materialised-im2col convolution comparison (ResNet-50
    /// only; `None` for models without convolutions).
    pub conv_implicit: Option<ConvImplicitBench>,
}

/// Everything one `repro --bench-kernels` invocation produces.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Per-kernel naive/cold/prepared timings.
    pub kernels: Vec<BenchResult>,
    /// Per-model end-to-end numbers.
    pub models: Vec<ModelBenchResult>,
}

/// All paths are timed best-of-N under the same policy; an asymmetric policy
/// (single naive run vs best-of-N elsewhere) would let one path shed
/// cold-cache noise the others absorb and skew the ratios. Five repeats keep
/// the cold/prepared ratios stable on shared machines.
const REPEATS: usize = 5;

fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Interleaved best-of-[`REPEATS`] timing of the four paths of one kernel:
/// every repetition measures naive, cold, plan-build and prepared back to
/// back, so a slow scheduling window on a shared machine inflates all four
/// instead of skewing one side of a ratio. The returned outputs come from each
/// path's best repetition.
#[allow(clippy::type_complexity)] // one (output, ms) pair per timed path
fn time_paths<N, B, P>(
    mut naive: impl FnMut() -> N,
    mut blocked: impl FnMut() -> B,
    mut build: impl FnMut(),
    mut prepared: impl FnMut() -> P,
) -> ((N, f64), (B, f64), f64, (P, f64)) {
    // Untimed warmup: fault in buffers, settle the allocator and branch
    // predictors, and let the blocked/prepared pair see the same cache state
    // their timed repetitions will.
    let _ = blocked();
    let _ = prepared();
    // Within a repetition the order is naive → build → blocked → prepared, so
    // the two sides of the cold/prepared ratio run back to back with the same
    // predecessor footprint (the naive pass thrashes the caches; the plan
    // build that follows touches the weight operand either way).
    let (mut n_out, mut n_ms) = time_once(&mut naive);
    let ((), mut build_ms) = time_once(&mut build);
    let (mut b_out, mut b_ms) = time_once(&mut blocked);
    let (mut p_out, mut p_ms) = time_once(&mut prepared);
    for _ in 1..REPEATS {
        let (out, ms) = time_once(&mut naive);
        if ms < n_ms {
            (n_out, n_ms) = (out, ms);
        }
        let ((), ms) = time_once(&mut build);
        build_ms = build_ms.min(ms);
        let (out, ms) = time_once(&mut blocked);
        if ms < b_ms {
            (b_out, b_ms) = (out, ms);
        }
        let (out, ms) = time_once(&mut prepared);
        if ms < p_ms {
            (p_out, p_ms) = (out, ms);
        }
    }
    ((n_out, n_ms), (b_out, b_ms), build_ms, (p_out, p_ms))
}

fn bits_equal(a: &DenseMatrix, b: &DenseMatrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice().iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The current git revision (short, with a `-dirty` suffix when the working
/// tree has uncommitted changes), or `"unknown"` outside a checkout — so the
/// trajectory never attributes numbers to code that did not produce them.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--abbrev=12"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Runs the full kernel + model benchmark suite. `quick` shrinks every shape
/// (used by the unit test and `repro --bench-kernels --smoke` so CI does not
/// pay the full 1024³ naive GEMM).
pub fn run(quick: bool) -> BenchRun {
    let arch = GpuArch::v100();
    let shape = arch.mma_shape;
    let mut rng = StdRng::seed_from_u64(20220711);
    let mut kernels = Vec::new();

    // Headline 1: dense GEMM, 1024³ (the acceptance shape).
    let s = if quick { 96 } else { 1024 };
    let a = DenseMatrix::random(&mut rng, s, s);
    let b = DenseMatrix::random(&mut rng, s, s);
    let plan = GemmPlan::new(&arch, &a, s);
    let (
        (naive_out, naive_ms),
        (blocked_out, blocked_ms),
        plan_build_ms,
        (prepared_out, prepared_ms),
    ) = time_paths(
        || reference::fragment_matmul_naive(shape, &a, &b),
        || {
            shfl_kernels::gemm::dense_gemm_execute(&arch, &a, &b)
                .expect("shapes match")
                .output
        },
        || drop(GemmPlan::new(&arch, &a, s)),
        || plan.execute(&b).expect("bucket matches").output,
    );
    kernels.push(BenchResult {
        kernel: "dense_gemm_execute".to_string(),
        shape: format!("{s}x{s}x{s}"),
        naive_ms,
        blocked_ms,
        plan_build_ms,
        prepared_ms,
        bit_identical: bits_equal(&naive_out, &blocked_out)
            && bits_equal(&naive_out, &prepared_out),
        headline: true,
    });

    // Headline 2: Shfl-BW SpMM at 70 % sparsity (density 0.30).
    let (m, k, n, v) = if quick {
        (128, 128, 64, 16)
    } else {
        (1024, 1024, 256, 64)
    };
    let shfl = synth::shfl_bw_matrix(7, m, k, v, 0.30);
    let b = DenseMatrix::random(&mut rng, k, n);
    let plan = SpmmPlan::shfl_bw(&arch, &shfl, n);
    let (
        (naive_out, naive_ms),
        (blocked_out, blocked_ms),
        plan_build_ms,
        (prepared_out, prepared_ms),
    ) = time_paths(
        || reference::stitched_spmm_naive(&arch, shfl.vector_wise(), &b, shfl.row_indices()),
        || {
            shfl_bw_spmm_execute(&arch, &shfl, &b)
                .expect("shapes match")
                .output
        },
        || drop(SpmmPlan::shfl_bw(&arch, &shfl, n)),
        || plan.execute(&b).expect("bucket matches").output,
    );
    kernels.push(BenchResult {
        kernel: "shfl_bw_spmm_execute".to_string(),
        shape: format!("{m}x{k}x{n} V={v} 70% sparse"),
        naive_ms,
        blocked_ms,
        plan_build_ms,
        prepared_ms,
        bit_identical: bits_equal(&naive_out, &blocked_out)
            && bits_equal(&naive_out, &prepared_out),
        headline: true,
    });

    // Trajectory entries: the remaining kernels on moderate shapes.
    let (m, k, n, v) = if quick {
        (64, 64, 32, 8)
    } else {
        (512, 512, 128, 32)
    };
    let b = DenseMatrix::random(&mut rng, k, n);

    let vw_dense = synth::vector_wise_dense(11, m, k, v, 0.30);
    let vw = VectorWiseMatrix::from_dense(&vw_dense, v).expect("m divides v");
    let identity: Vec<u32> = (0..m as u32).collect();
    let plan = SpmmPlan::vector_wise(&arch, &vw, n);
    let (
        (naive_out, naive_ms),
        (blocked_out, blocked_ms),
        plan_build_ms,
        (prepared_out, prepared_ms),
    ) = time_paths(
        || reference::stitched_spmm_naive(&arch, &vw, &b, &identity),
        || {
            vector_wise_spmm_execute(&arch, &vw, &b)
                .expect("shapes match")
                .output
        },
        || drop(SpmmPlan::vector_wise(&arch, &vw, n)),
        || plan.execute(&b).expect("bucket matches").output,
    );
    kernels.push(BenchResult {
        kernel: "vector_wise_spmm_execute".to_string(),
        shape: format!("{m}x{k}x{n} V={v}"),
        naive_ms,
        blocked_ms,
        plan_build_ms,
        prepared_ms,
        bit_identical: bits_equal(&naive_out, &blocked_out)
            && bits_equal(&naive_out, &prepared_out),
        headline: false,
    });

    let csr_dense = synth::unstructured_dense(13, m, k, 0.30);
    let csr = CsrMatrix::from_dense(&csr_dense);
    let plan = SpmmPlan::cuda_core(&arch, &csr, n);
    let (
        (naive_out, naive_ms),
        (blocked_out, blocked_ms),
        plan_build_ms,
        (prepared_out, prepared_ms),
    ) = time_paths(
        || reference::csr_spmm_naive(&csr, &b),
        || {
            cuda_core_spmm_execute(&arch, &csr, &b)
                .expect("shapes match")
                .output
        },
        || drop(SpmmPlan::cuda_core(&arch, &csr, n)),
        || plan.execute(&b).expect("bucket matches").output,
    );
    kernels.push(BenchResult {
        kernel: "cuda_core_spmm_execute".to_string(),
        shape: format!("{m}x{k}x{n}"),
        naive_ms,
        blocked_ms,
        plan_build_ms,
        prepared_ms,
        bit_identical: bits_equal(&naive_out, &blocked_out)
            && bits_equal(&naive_out, &prepared_out),
        headline: false,
    });

    let bsr: BlockSparseMatrix = synth::block_wise_matrix(17, m, k, v, 0.30);
    let plan = SpmmPlan::block_wise(&arch, &bsr, n);
    let (
        (naive_out, naive_ms),
        (blocked_out, blocked_ms),
        plan_build_ms,
        (prepared_out, prepared_ms),
    ) = time_paths(
        || reference::block_spmm_naive(&arch, &bsr, &b),
        || {
            block_wise_spmm_execute(&arch, &bsr, &b)
                .expect("shapes match")
                .output
        },
        || drop(SpmmPlan::block_wise(&arch, &bsr, n)),
        || plan.execute(&b).expect("bucket matches").output,
    );
    kernels.push(BenchResult {
        kernel: "block_wise_spmm_execute".to_string(),
        shape: format!("{m}x{k}x{n} V={v}"),
        naive_ms,
        blocked_ms,
        plan_build_ms,
        prepared_ms,
        bit_identical: bits_equal(&naive_out, &blocked_out)
            && bits_equal(&naive_out, &prepared_out),
        headline: false,
    });

    let a100 = GpuArch::a100();
    let bal = synth::balanced_matrix(19, m, k);
    let plan = SpmmPlan::balanced(&a100, &bal, n).expect("supported on A100");
    let (
        (naive_out, naive_ms),
        (blocked_out, blocked_ms),
        plan_build_ms,
        (prepared_out, prepared_ms),
    ) = time_paths(
        || reference::balanced_spmm_naive(&a100, &bal, &b),
        || {
            balanced_spmm_execute(&a100, &bal, &b)
                .expect("supported on A100")
                .output
        },
        || drop(SpmmPlan::balanced(&a100, &bal, n).expect("supported on A100")),
        || plan.execute(&b).expect("bucket matches").output,
    );
    kernels.push(BenchResult {
        kernel: "balanced_spmm_execute".to_string(),
        shape: format!("{m}x{k}x{n} 2:4"),
        naive_ms,
        blocked_ms,
        plan_build_ms,
        prepared_ms,
        bit_identical: bits_equal(&naive_out, &blocked_out)
            && bits_equal(&naive_out, &prepared_out),
        headline: false,
    });

    // Implicit-GEMM convolution (ResNet-like layer, shrunk in quick mode).
    let params = conv::Conv2dParams {
        batch: if quick { 1 } else { 4 },
        in_channels: if quick { 8 } else { 64 },
        out_channels: if quick { 8 } else { 64 },
        input_h: 14,
        input_w: 14,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
        dilation: 1,
    };
    let (cm, _, ck) = params.implicit_gemm_shape();
    let weights = DenseMatrix::random(&mut rng, cm, ck);
    let input = conv::Tensor4::random(
        &mut rng,
        params.batch,
        params.in_channels,
        params.input_h,
        params.input_w,
    );
    let plan = ConvPlan::dense(&arch, &weights, &params).expect("geometry matches");
    let (
        (naive_out, naive_ms),
        (blocked_out, blocked_ms),
        plan_build_ms,
        (prepared_out, prepared_ms),
    ) = time_paths(
        || reference::conv2d_dense_naive(&arch, &weights, &input, &params),
        || {
            conv::conv2d_dense_execute(&arch, &weights, &input, &params)
                .expect("geometry matches")
                .0
        },
        || drop(ConvPlan::dense(&arch, &weights, &params).expect("geometry matches")),
        || plan.execute(&input).expect("geometry matches").0,
    );
    kernels.push(BenchResult {
        kernel: "conv2d_dense_execute".to_string(),
        shape: format!(
            "b{} {}->{} {}x{}",
            params.batch, params.in_channels, params.out_channels, params.input_h, params.input_w
        ),
        naive_ms,
        blocked_ms,
        plan_build_ms,
        prepared_ms,
        bit_identical: naive_out == blocked_out && naive_out == prepared_out,
        headline: false,
    });

    // End-to-end: one prepared engine per model, repeated forward passes.
    let cfg = if quick {
        EngineConfig::smoke()
    } else {
        EngineConfig::paper_default()
    };
    // The serving trace rides along in full runs only: the smoke path keeps
    // CI cheap (the workflow runs `repro --bench-serving --smoke` as its own
    // gated step instead).
    let mut serving_by_model: std::collections::HashMap<String, _> = if quick {
        std::collections::HashMap::new()
    } else {
        crate::bench_serving::run(false)
            .into_iter()
            .map(|r| (r.model.clone(), r))
            .collect()
    };
    let mut models = Vec::new();
    for model in DnnModel::all() {
        let engine = ModelEngine::build(model, &arch, &cfg).expect("engine builds");
        let report = engine.run_best_of(if quick { 1 } else { REPEATS });
        let conv_implicit = (model == DnnModel::Resnet50)
            .then(|| bench_conv_implicit(&engine, cfg.batch, cfg.seq_len, quick));
        models.push(ModelBenchResult {
            model: model.name().to_string(),
            batch: report.batch,
            seq_len: report.seq_len,
            layers: report.layers.len(),
            build_ms: report.build_ms,
            forward_ms: report.forward_ms,
            throughput: report.throughput_per_s(),
            modeled_throughput: report.modeled_throughput_per_s(),
            unit: report.unit,
            serving: serving_by_model.remove(model.name()),
            conv_implicit,
        });
    }

    BenchRun { kernels, models }
}

/// Times the implicit-GEMM conv path against the retained materialised-im2col
/// baseline on one engine (best-of interleaved, like [`time_paths`]), checks
/// bit-identity against the cold im2col oracle, and counter-verifies that the
/// implicit forwards charge **zero** bytes to the global im2col traffic
/// counter.
fn bench_conv_implicit(
    engine: &ModelEngine,
    batch: usize,
    seq_len: usize,
    quick: bool,
) -> ConvImplicitBench {
    let reps = if quick { 1 } else { REPEATS };
    // Warm both paths: fault in the conv plans and the unfold scratch so the
    // timed repetitions compare steady-state serving, not first-touch costs.
    let _ = engine.forward(batch, seq_len).expect("implicit forward");
    let _ = engine
        .forward_im2col(batch, seq_len)
        .expect("im2col forward");

    // Counter-verified proof that the implicit path materialises nothing: the
    // global im2col traffic counter must not move across an implicit forward.
    let before = conv::im2col_traffic_bytes();
    let mut implicit = engine.forward(batch, seq_len).expect("implicit forward");
    let im2col_bytes_on_implicit = conv::im2col_traffic_bytes() - before;
    let mut im2col = engine
        .forward_im2col(batch, seq_len)
        .expect("im2col forward");
    for _ in 1..reps {
        let next = engine.forward(batch, seq_len).expect("implicit forward");
        if next.forward_ms < implicit.forward_ms {
            implicit = next;
        }
        let next = engine
            .forward_im2col(batch, seq_len)
            .expect("im2col forward");
        if next.forward_ms < im2col.forward_ms {
            im2col = next;
        }
    }

    // Bit-identity gate: the implicit per-layer outputs against the cold
    // materialised-im2col oracle (fresh exact-width plans, no bucketed cache).
    let implicit_outs = engine.forward_outputs(batch, seq_len).expect("outputs");
    let oracle_outs = engine
        .forward_outputs_cold(batch, seq_len)
        .expect("cold outputs");
    let bit_identical = implicit_outs.len() == oracle_outs.len()
        && implicit_outs
            .iter()
            .zip(oracle_outs.iter())
            .all(|(a, b)| bits_equal(a, b));

    let (input_bytes_read, im2col_bytes_avoided) = engine
        .conv_transform_bytes(batch)
        .expect("conv plans are cached after the forwards");
    ConvImplicitBench {
        input_bytes_read,
        im2col_bytes_avoided,
        implicit_ms: implicit.forward_ms,
        im2col_ms: im2col.forward_ms,
        implicit_images_s: implicit.throughput_per_s(),
        im2col_images_s: im2col.throughput_per_s(),
        bit_identical,
        im2col_bytes_on_implicit,
    }
}

/// Renders the plain-text report table.
pub fn to_table(run: &BenchRun) -> String {
    let mut out = String::from(
        "Kernel wall-clock: naive reference vs cold blocked call vs prepared plan\n\
         kernel                     | shape                      | naive ms | blocked ms | build ms | prepared ms | speedup | prep-speedup | bit-identical\n\
         ---------------------------+----------------------------+----------+------------+----------+-------------+---------+--------------+--------------\n",
    );
    for r in &run.kernels {
        out.push_str(&format!(
            "{:26} | {:26} | {:8.2} | {:10.2} | {:8.2} | {:11.2} | {:6.1}x | {:11.2}x | {}{}\n",
            r.kernel,
            r.shape,
            r.naive_ms,
            r.blocked_ms,
            r.plan_build_ms,
            r.prepared_ms,
            r.speedup(),
            r.prepared_speedup(),
            r.bit_identical,
            if r.headline {
                "  [headline, target >=5x]"
            } else {
                ""
            }
        ));
    }
    out.push_str(
        "\nEnd-to-end model inference (prepared engine, one plan per layer)\n\
         model        | batch | seq | layers | build ms | forward ms | throughput       | modeled GPU\n\
         -------------+-------+-----+--------+----------+------------+------------------+----------------\n",
    );
    for m in &run.models {
        out.push_str(&format!(
            "{:12} | {:5} | {:3} | {:6} | {:8.1} | {:10.2} | {:9.1} {:6} | {:9.1} {}\n",
            m.model,
            m.batch,
            m.seq_len,
            m.layers,
            m.build_ms,
            m.forward_ms,
            m.throughput,
            m.unit,
            m.modeled_throughput,
            m.unit,
        ));
    }
    for m in &run.models {
        let Some(c) = &m.conv_implicit else { continue };
        out.push_str(&format!(
            "\nImplicit-GEMM convolution vs materialised im2col ({})\n\
             implicit ms | im2col ms | speedup | implicit img/s | im2col img/s | transform bytes | im2col bytes avoided | im2col bytes on implicit | bit-identical\n\
             {:11.2} | {:9.2} | {:6.2}x | {:14.1} | {:12.1} | {:15} | {:20} | {:24} | {}\n",
            m.model,
            c.implicit_ms,
            c.im2col_ms,
            c.speedup(),
            c.implicit_images_s,
            c.im2col_images_s,
            c.input_bytes_read,
            c.im2col_bytes_avoided,
            c.im2col_bytes_on_implicit,
            c.bit_identical,
        ));
    }
    let serving: Vec<_> = run
        .models
        .iter()
        .filter_map(|m| m.serving.clone())
        .collect();
    if !serving.is_empty() {
        out.push('\n');
        out.push_str(&crate::bench_serving::to_table(&serving));
    }
    out
}

/// Serialises the results as the `BENCH_kernels.json` v2 document (hand-rolled
/// JSON: the offline build has no serde).
pub fn to_json(run: &BenchRun) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"shfl-bw-repro/bench-kernels/v2\",\n");
    out.push_str(&format!(
        "  \"threads\": {},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    out.push_str(&format!("  \"git_rev\": \"{}\",\n", esc(&git_rev())));
    out.push_str("  \"results\": [\n");
    for (i, r) in run.kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"naive_ms\": {:.3}, \
             \"blocked_ms\": {:.3}, \"plan_build_ms\": {:.3}, \"prepared_ms\": {:.3}, \
             \"speedup\": {:.2}, \"prepared_speedup\": {:.2}, \"bit_identical\": {}, \
             \"headline\": {}}}{}\n",
            esc(&r.kernel),
            esc(&r.shape),
            r.naive_ms,
            r.blocked_ms,
            r.plan_build_ms,
            r.prepared_ms,
            r.speedup(),
            r.prepared_speedup(),
            r.bit_identical,
            r.headline,
            if i + 1 < run.kernels.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"models\": [\n");
    for (i, m) in run.models.iter().enumerate() {
        let serving = match &m.serving {
            Some(s) => {
                let c = &s.continuous;
                let decode = match &s.decode {
                    Some(d) => format!(
                        ", \"decode\": {{\"sessions\": {}, \"steps\": {}, \
                         \"tokens\": {}, \"wall_ms\": {:.3}, \
                         \"decode_tokens_s\": {:.2}, \"token_p50_ms\": {:.3}, \
                         \"token_p99_ms\": {:.3}, \
                         \"mean_interleave_width\": {:.3}, \"evictions\": {}, \
                         \"resumed\": {}, \"lost_tokens\": {}, \
                         \"bit_identical\": {}, \"serial_sessions\": {}, \
                         \"serial_wall_ms\": {:.3}, \"serial_tokens_s\": {:.2}}}",
                        d.sessions,
                        d.steps,
                        d.tokens,
                        d.wall_ms,
                        d.tokens_s,
                        d.token_p50_ms,
                        d.token_p99_ms,
                        d.mean_interleave_width,
                        d.evictions,
                        d.resumed,
                        d.lost_tokens,
                        d.bit_identical,
                        d.serial_sessions,
                        d.serial_wall_ms,
                        d.serial_tokens_s,
                    ),
                    None => String::new(),
                };
                format!(
                    ", \"serving\": {{\"forwards\": {}, \"hit_rate\": {:.4}, \
                     \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
                     \"throughput\": {:.2}, \"cold_throughput\": {:.2}, \
                     \"bit_identical\": {}, \"mt_workers\": {}, \"mt_requests\": {}, \
                     \"mt_wall_ms\": {:.3}, \"panel_segments\": {}, \
                     \"panel_sweep_bytes\": {}, \"panel_bytes_fused\": {}, \
                     \"panel_bytes_segmented\": {}, \"coalesced_requests\": {}, \
                     \"coalesced_wall_ms\": {:.3}, \"coalesced_bit_identical\": {}, \
                     \"continuous\": {{\"layers\": {}, \"requests\": {}, \
                     \"window_us\": {}, \"windowed_wall_ms\": {:.3}, \
                     \"zero_wall_ms\": {:.3}, \"bit_identical\": {}, \
                     \"windowed_groups\": {}, \"coalesced_requests\": {}, \
                     \"windowed_panel_bytes\": {}, \"zero_panel_bytes\": {}, \
                     \"deadline_p50_ms\": {:.3}, \"deadline_p99_ms\": {:.3}, \
                     \"standard_p99_ms\": {:.3}, \"bulk_p50_ms\": {:.3}, \
                     \"bulk_p99_ms\": {:.3}, \"best_cap\": {}, \
                     \"overload_requests\": {}, \"overload_shed\": {}, \
                     \"overload_shed_rate\": {:.4}, \
                     \"overload_deadline_p99_ms\": {:.3}, \
                     \"overload_bulk_p99_ms\": {:.3}, \
                     \"update_swaps\": {}, \"update_swap_p99_ms\": {:.3}, \
                     \"repack_bytes_ratio\": {:.4}, \
                     \"stale_plan_executes\": {}, \
                     \"update_failed_requests\": {}, \
                     \"replica_count\": {}, \"replica_requests\": {}, \
                     \"replica_failovers\": {}, \"failover_p99_ms\": {:.3}, \
                     \"hedge_wins\": {}, \"degraded_shed_rate\": {:.4}, \
                     \"replica_failed_requests\": {}, \
                     \"replica_deadline_p99_ms\": {:.3}, \
                     \"replica_bulk_p99_ms\": {:.3}}}{decode}}}",
                    s.forwards,
                    s.hit_rate,
                    s.p50_ms,
                    s.p95_ms,
                    s.p99_ms,
                    s.throughput,
                    s.cold_throughput,
                    s.bit_identical,
                    s.mt_workers,
                    s.mt_requests,
                    s.mt_wall_ms,
                    s.panel_segments,
                    s.panel_sweep_bytes,
                    s.panel_bytes_fused,
                    s.panel_bytes_segmented,
                    s.coalesced_requests,
                    s.coalesced_wall_ms,
                    s.coalesced_bit_identical,
                    c.layers,
                    c.requests,
                    c.window_us,
                    c.windowed_wall_ms,
                    c.zero_wall_ms,
                    c.bit_identical,
                    c.windowed_groups,
                    c.coalesced_requests,
                    c.windowed_panel_bytes,
                    c.zero_panel_bytes,
                    c.deadline_p50_ms,
                    c.deadline_p99_ms,
                    c.standard_p99_ms,
                    c.bulk_p50_ms,
                    c.bulk_p99_ms,
                    c.best_cap,
                    c.overload_requests,
                    c.overload_shed,
                    c.overload_shed_rate,
                    c.overload_deadline_p99_ms,
                    c.overload_bulk_p99_ms,
                    c.update_swaps,
                    c.update_swap_p99_ms,
                    c.repack_bytes_ratio,
                    c.stale_plan_executes,
                    c.update_failed_requests,
                    c.replica_count,
                    c.replica_requests,
                    c.replica_failovers,
                    c.failover_p99_ms,
                    c.hedge_wins,
                    c.degraded_shed_rate,
                    c.replica_failed_requests,
                    c.replica_deadline_p99_ms,
                    c.replica_bulk_p99_ms,
                )
            }
            None => String::new(),
        };
        let conv = match &m.conv_implicit {
            Some(c) => format!(
                ", \"conv_implicit\": {{\"input_bytes_read\": {}, \
                 \"im2col_bytes_avoided\": {}, \"implicit_ms\": {:.3}, \
                 \"im2col_ms\": {:.3}, \"implicit_images_s\": {:.2}, \
                 \"im2col_images_s\": {:.2}, \"speedup\": {:.2}, \
                 \"bit_identical\": {}, \"im2col_bytes_on_implicit\": {}}}",
                c.input_bytes_read,
                c.im2col_bytes_avoided,
                c.implicit_ms,
                c.im2col_ms,
                c.implicit_images_s,
                c.im2col_images_s,
                c.speedup(),
                c.bit_identical,
                c.im2col_bytes_on_implicit,
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"batch\": {}, \"seq_len\": {}, \"layers\": {}, \
             \"build_ms\": {:.3}, \"forward_ms\": {:.3}, \"throughput\": {:.2}, \
             \"modeled_throughput\": {:.2}, \"unit\": \"{}\"{}{}}}{}\n",
            esc(&m.model),
            m.batch,
            m.seq_len,
            m.layers,
            m.build_ms,
            m.forward_ms,
            m.throughput,
            m.modeled_throughput,
            esc(m.unit),
            serving,
            conv,
            if i + 1 < run.models.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_bit_identical_and_json_is_well_formed() {
        let run = run(true);
        assert_eq!(run.kernels.len(), 7);
        assert!(run.kernels.iter().all(|r| r.bit_identical), "{run:?}");
        assert_eq!(run.kernels.iter().filter(|r| r.headline).count(), 2);
        assert_eq!(run.models.len(), 3);
        assert!(run.models.iter().all(|m| m.forward_ms > 0.0));
        // The conv comparison rides on ResNet-50 only, and its implicit path
        // must be bit-identical to the cold materialised-im2col oracle.
        let conv: Vec<_> = run
            .models
            .iter()
            .filter_map(|m| m.conv_implicit.as_ref())
            .collect();
        assert_eq!(conv.len(), 1);
        assert!(conv[0].bit_identical, "{:?}", conv[0]);
        assert!(conv[0].input_bytes_read > 0);
        assert!(conv[0].im2col_bytes_avoided > conv[0].input_bytes_read);
        let json = to_json(&run);
        assert!(json.contains("\"dense_gemm_execute\""));
        assert!(json.contains("\"shfl_bw_spmm_execute\""));
        assert!(json.contains("\"prepared_ms\""));
        assert!(json.contains("\"git_rev\""));
        assert!(json.contains("\"Transformer\""));
        // Balanced braces / brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let table = to_table(&run);
        assert!(table.contains("headline"));
        assert!(table.contains("ResNet50"));
    }
}
