//! Wall-clock kernel benchmark: naive reference vs the blocked engine.
//!
//! `repro --bench-kernels` times every functional kernel twice in the same
//! run — once through the retained naive reference path
//! (`shfl_kernels::reference`) and once through the blocked, parallel engine —
//! and writes the per-kernel wall-clock numbers and speedups to
//! `BENCH_kernels.json`. The file is the performance trajectory for this and
//! future PRs: the two headline entries (1024³ dense GEMM and Shfl-BW SpMM at
//! 70 % sparsity) carry a ≥5× speedup target, and each entry records whether
//! the two paths produced bit-identical outputs, so a perf regression or a
//! correctness drift both show up in the same artifact.

use crate::synth;
use gpu_sim::GpuArch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shfl_core::formats::{BlockSparseMatrix, CsrMatrix, VectorWiseMatrix};
use shfl_core::matrix::DenseMatrix;
use shfl_kernels::spmm::{
    block_wise_spmm_execute, cuda_core_spmm_execute, shfl_bw_spmm_execute, vector_wise_spmm_execute,
};
use shfl_kernels::{conv, gemm, reference};
use std::time::Instant;

/// One benchmarked kernel: wall-clock of the naive and blocked paths.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Kernel name (matches the functional kernel it exercises).
    pub kernel: String,
    /// Problem shape, e.g. `"1024x1024x1024"`.
    pub shape: String,
    /// Wall-clock of the naive reference path in milliseconds (best of
    /// [`REPEATS`] runs, same policy as the blocked path so the ratio is
    /// comparable run-to-run).
    pub naive_ms: f64,
    /// Wall-clock of the blocked engine in milliseconds (best of
    /// [`REPEATS`] runs).
    pub blocked_ms: f64,
    /// Whether the two paths produced bit-identical outputs.
    pub bit_identical: bool,
    /// Whether this entry carries the ≥5× acceptance target.
    pub headline: bool,
}

impl BenchResult {
    /// Naive-over-blocked wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        if self.blocked_ms > 0.0 {
            self.naive_ms / self.blocked_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Both paths are timed best-of-N under the same policy; an asymmetric
/// policy (single naive run vs best-of-N blocked) would let the blocked path
/// shed cold-cache noise the naive path absorbs and inflate the ratio.
const REPEATS: usize = 3;

fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

fn time_best<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut out, mut best) = time_once(&mut f);
    for _ in 1..REPEATS {
        let (next, ms) = time_once(&mut f);
        if ms < best {
            best = ms;
            out = next;
        }
    }
    (out, best)
}

fn bits_equal(a: &DenseMatrix, b: &DenseMatrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice().iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs the full kernel benchmark suite. `quick` shrinks every shape (used by
/// the unit test so CI does not pay the full 1024³ naive GEMM).
pub fn run(quick: bool) -> Vec<BenchResult> {
    let arch = GpuArch::v100();
    let shape = arch.mma_shape;
    let mut rng = StdRng::seed_from_u64(20220711);
    let mut results = Vec::new();

    // Headline 1: dense GEMM execute, 1024³ (the acceptance shape).
    let s = if quick { 96 } else { 1024 };
    let a = DenseMatrix::random(&mut rng, s, s);
    let b = DenseMatrix::random(&mut rng, s, s);
    let (naive_out, naive_ms) = time_best(|| reference::fragment_matmul_naive(shape, &a, &b));
    let (blocked_out, blocked_ms) = time_best(|| gemm::fragment_matmul(shape, &a, &b));
    results.push(BenchResult {
        kernel: "dense_gemm_execute".to_string(),
        shape: format!("{s}x{s}x{s}"),
        naive_ms,
        blocked_ms,
        bit_identical: bits_equal(&naive_out, &blocked_out),
        headline: true,
    });

    // Headline 2: Shfl-BW SpMM execute at 70 % sparsity (density 0.30).
    let (m, k, n, v) = if quick {
        (128, 128, 64, 16)
    } else {
        (1024, 1024, 256, 64)
    };
    let shfl = synth::shfl_bw_matrix(7, m, k, v, 0.30);
    let b = DenseMatrix::random(&mut rng, k, n);
    let (naive_out, naive_ms) = time_best(|| {
        reference::stitched_spmm_naive(&arch, shfl.vector_wise(), &b, shfl.row_indices())
    });
    let (blocked_out, blocked_ms) = time_best(|| {
        shfl_bw_spmm_execute(&arch, &shfl, &b)
            .expect("shapes match")
            .output
    });
    results.push(BenchResult {
        kernel: "shfl_bw_spmm_execute".to_string(),
        shape: format!("{m}x{k}x{n} V={v} 70% sparse"),
        naive_ms,
        blocked_ms,
        bit_identical: bits_equal(&naive_out, &blocked_out),
        headline: true,
    });

    // Trajectory entries: the remaining kernels on moderate shapes.
    let (m, k, n, v) = if quick {
        (64, 64, 32, 8)
    } else {
        (512, 512, 128, 32)
    };
    let b = DenseMatrix::random(&mut rng, k, n);

    let vw_dense = synth::vector_wise_dense(11, m, k, v, 0.30);
    let vw = VectorWiseMatrix::from_dense(&vw_dense, v).expect("m divides v");
    let identity: Vec<u32> = (0..m as u32).collect();
    let (naive_out, naive_ms) =
        time_best(|| reference::stitched_spmm_naive(&arch, &vw, &b, &identity));
    let (blocked_out, blocked_ms) = time_best(|| {
        vector_wise_spmm_execute(&arch, &vw, &b)
            .expect("shapes match")
            .output
    });
    results.push(BenchResult {
        kernel: "vector_wise_spmm_execute".to_string(),
        shape: format!("{m}x{k}x{n} V={v}"),
        naive_ms,
        blocked_ms,
        bit_identical: bits_equal(&naive_out, &blocked_out),
        headline: false,
    });

    let csr_dense = synth::unstructured_dense(13, m, k, 0.30);
    let csr = CsrMatrix::from_dense(&csr_dense);
    let (naive_out, naive_ms) = time_best(|| reference::csr_spmm_naive(&csr, &b));
    let (blocked_out, blocked_ms) = time_best(|| {
        cuda_core_spmm_execute(&arch, &csr, &b)
            .expect("shapes match")
            .output
    });
    results.push(BenchResult {
        kernel: "cuda_core_spmm_execute".to_string(),
        shape: format!("{m}x{k}x{n}"),
        naive_ms,
        blocked_ms,
        bit_identical: bits_equal(&naive_out, &blocked_out),
        headline: false,
    });

    let bsr: BlockSparseMatrix = synth::block_wise_matrix(17, m, k, v, 0.30);
    let (naive_out, naive_ms) = time_best(|| reference::block_spmm_naive(&arch, &bsr, &b));
    let (blocked_out, blocked_ms) = time_best(|| {
        block_wise_spmm_execute(&arch, &bsr, &b)
            .expect("shapes match")
            .output
    });
    results.push(BenchResult {
        kernel: "block_wise_spmm_execute".to_string(),
        shape: format!("{m}x{k}x{n} V={v}"),
        naive_ms,
        blocked_ms,
        bit_identical: bits_equal(&naive_out, &blocked_out),
        headline: false,
    });

    let a100 = GpuArch::a100();
    let bal = synth::balanced_matrix(19, m, k);
    let (naive_out, naive_ms) = time_best(|| reference::balanced_spmm_naive(&a100, &bal, &b));
    let (blocked_out, blocked_ms) = time_best(|| {
        shfl_kernels::spmm::balanced_spmm_execute(&a100, &bal, &b)
            .expect("supported on A100")
            .output
    });
    results.push(BenchResult {
        kernel: "balanced_spmm_execute".to_string(),
        shape: format!("{m}x{k}x{n} 2:4"),
        naive_ms,
        blocked_ms,
        bit_identical: bits_equal(&naive_out, &blocked_out),
        headline: false,
    });

    // Implicit-GEMM convolution (ResNet-like layer, shrunk in quick mode).
    let params = conv::Conv2dParams {
        batch: if quick { 1 } else { 4 },
        in_channels: if quick { 8 } else { 64 },
        out_channels: if quick { 8 } else { 64 },
        input_h: 14,
        input_w: 14,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
    };
    let (cm, _, ck) = params.implicit_gemm_shape();
    let weights = DenseMatrix::random(&mut rng, cm, ck);
    let input = conv::Tensor4::random(
        &mut rng,
        params.batch,
        params.in_channels,
        params.input_h,
        params.input_w,
    );
    let (naive_out, naive_ms) =
        time_best(|| reference::conv2d_dense_naive(&arch, &weights, &input, &params));
    let (blocked_out, blocked_ms) = time_best(|| {
        conv::conv2d_dense_execute(&arch, &weights, &input, &params)
            .expect("geometry matches")
            .0
    });
    results.push(BenchResult {
        kernel: "conv2d_dense_execute".to_string(),
        shape: format!(
            "b{} {}->{} {}x{}",
            params.batch, params.in_channels, params.out_channels, params.input_h, params.input_w
        ),
        naive_ms,
        blocked_ms,
        bit_identical: naive_out == blocked_out,
        headline: false,
    });

    results
}

/// Renders the plain-text report table.
pub fn to_table(results: &[BenchResult]) -> String {
    let mut out = String::from(
        "Kernel wall-clock: naive reference vs blocked engine\n\
         kernel                     | shape                      | naive ms | blocked ms | speedup | bit-identical\n\
         ---------------------------+----------------------------+----------+------------+---------+--------------\n",
    );
    for r in results {
        out.push_str(&format!(
            "{:26} | {:26} | {:8.2} | {:10.2} | {:6.1}x | {}{}\n",
            r.kernel,
            r.shape,
            r.naive_ms,
            r.blocked_ms,
            r.speedup(),
            r.bit_identical,
            if r.headline {
                "  [headline, target >=5x]"
            } else {
                ""
            }
        ));
    }
    out
}

/// Serialises the results as the `BENCH_kernels.json` document (hand-rolled
/// JSON: the offline build has no serde).
pub fn to_json(results: &[BenchResult]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"shfl-bw-repro/bench-kernels/v1\",\n");
    out.push_str(&format!(
        "  \"threads\": {},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"naive_ms\": {:.3}, \
             \"blocked_ms\": {:.3}, \"speedup\": {:.2}, \"bit_identical\": {}, \
             \"headline\": {}}}{}\n",
            esc(&r.kernel),
            esc(&r.shape),
            r.naive_ms,
            r.blocked_ms,
            r.speedup(),
            r.bit_identical,
            r.headline,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_bit_identical_and_json_is_well_formed() {
        let results = run(true);
        assert_eq!(results.len(), 7);
        assert!(results.iter().all(|r| r.bit_identical), "{results:?}");
        assert_eq!(results.iter().filter(|r| r.headline).count(), 2);
        let json = to_json(&results);
        assert!(json.contains("\"dense_gemm_execute\""));
        assert!(json.contains("\"shfl_bw_spmm_execute\""));
        // Balanced braces / brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let table = to_table(&results);
        assert!(table.contains("headline"));
    }
}
