//! Property-based tests of the pruning algorithms: every pruner must hit the
//! requested density, respect its structural constraint, and never retain less
//! importance than an obviously-worse strategy.

use proptest::prelude::*;
use shfl_core::mask::BinaryMask;
use shfl_core::matrix::DenseMatrix;
use shfl_core::pattern::{is_balanced, is_block_wise, is_shfl_bw, is_vector_wise};
use shfl_pruning::{
    BalancedPruner, BlockWisePruner, Pruner, ShflBwPruner, UnstructuredPruner, VectorWisePruner,
};

/// Strategy producing a positive score matrix with dimensions that every granularity
/// used below divides (multiples of 16), plus a density target.
fn score_case() -> impl Strategy<Value = (DenseMatrix, f64)> {
    (1usize..5, 1usize..5, 0.05f64..0.6, any::<u64>()).prop_map(|(rg, cg, density, seed)| {
        let rows = rg * 16;
        let cols = cg * 16;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let scores = DenseMatrix::from_fn(rows, cols, |_, _| (next() % 10_000) as f32 / 10_000.0);
        (scores, density)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn unstructured_hits_the_exact_density((scores, density) in score_case()) {
        let mask = UnstructuredPruner::new().prune(&scores, density).unwrap();
        let expected = ((scores.len() as f64) * density).round() as usize;
        prop_assert_eq!(mask.kept_count(), expected);
    }

    #[test]
    fn vector_wise_masks_validate_and_hit_density((scores, density) in score_case()) {
        let mask = VectorWisePruner::new(8).prune(&scores, density).unwrap();
        prop_assert!(is_vector_wise(&mask, 8));
        prop_assert!((mask.density() - density).abs() < 0.06);
    }

    #[test]
    fn block_wise_masks_validate((scores, density) in score_case()) {
        let mask = BlockWisePruner::new(16).prune(&scores, density).unwrap();
        prop_assert!(is_block_wise(&mask, 16));
        // The achievable density is quantised to whole blocks; compare against the
        // block-level quota rather than the raw target.
        let blocks = (scores.rows() / 16) * (scores.cols() / 16);
        let kept_blocks = ((blocks as f64) * density).round();
        let expected_density = kept_blocks / blocks as f64;
        prop_assert!((mask.density() - expected_density).abs() < 1e-9);
    }

    #[test]
    fn balanced_masks_validate((scores, _density) in score_case()) {
        let mask = BalancedPruner::two_in_four().prune(&scores, 0.5).unwrap();
        prop_assert!(is_balanced(&mask, 2, 4));
        prop_assert!(mask.density() <= 0.5 + 1e-9);
    }

    #[test]
    fn shfl_bw_masks_validate_and_permutation_groups_them((scores, density) in score_case()) {
        let pruner = ShflBwPruner::new(8);
        let result = pruner.prune_with_permutation(&scores, density).unwrap();
        prop_assert!(is_shfl_bw(&result.mask, 8));
        let shuffled = result.mask.permuted_rows(&result.permutation).unwrap();
        prop_assert!(is_vector_wise(&shuffled, 8));
        prop_assert!((result.mask.density() - density).abs() < 0.06);
    }

    #[test]
    fn retained_score_hierarchy_holds((scores, density) in score_case()) {
        // Unstructured ⪆ Shfl-BW ⪆ vector-wise on the same score matrix at the same
        // density quota. The comparisons carry a small tolerance: the per-group column
        // quota rounds differently from the global element quota, and the K-Means
        // grouping is a heuristic that may land marginally below the trivial
        // consecutive grouping on structure-free random scores.
        let retained = |mask: &BinaryMask| mask.retained_score(&scores).unwrap();
        let un = retained(&UnstructuredPruner::new().prune(&scores, density).unwrap());
        let shfl = retained(&ShflBwPruner::new(8).prune(&scores, density).unwrap());
        let vw = retained(&VectorWisePruner::new(8).prune(&scores, density).unwrap());
        prop_assert!(un >= shfl * 0.95);
        prop_assert!(shfl >= vw * 0.95);
    }

    #[test]
    fn pruners_reject_invalid_densities((scores, _d) in score_case()) {
        prop_assert!(UnstructuredPruner::new().prune(&scores, -0.2).is_err());
        prop_assert!(VectorWisePruner::new(8).prune(&scores, 1.7).is_err());
        prop_assert!(ShflBwPruner::new(8).prune(&scores, f64::NAN).is_err());
    }
}
