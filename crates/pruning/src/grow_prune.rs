//! Grow-and-Prune scheduling (the workflow the paper uses for Transformer and
//! ResNet-50, §6.1, following Ma et al.).
//!
//! Instead of pruning to the target sparsity in one shot, the schedule alternates
//! pruning and re-growing over several rounds: each round prunes to an intermediate
//! density on the current importance scores, then "grows back" a fraction of the
//! pruned positions whose scores have become competitive (here modelled by refreshing
//! the scores of grown positions towards the teacher magnitudes, standing in for the
//! gradient-based regrowth criterion of the original method). The final round lands on
//! the target density and pattern.

use crate::Pruner;
use shfl_core::mask::BinaryMask;
use shfl_core::matrix::DenseMatrix;
use shfl_core::Result;

/// Configuration of the Grow-and-Prune schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowPruneConfig {
    /// Number of prune/grow rounds before the final projection.
    pub rounds: usize,
    /// Fraction of the *pruned* positions regrown after each intermediate round.
    pub grow_fraction: f64,
    /// Density of the first round, interpolated linearly down to the target density
    /// over the rounds.
    pub initial_density: f64,
}

impl Default for GrowPruneConfig {
    fn default() -> Self {
        GrowPruneConfig {
            rounds: 4,
            grow_fraction: 0.1,
            initial_density: 0.8,
        }
    }
}

/// Result of the Grow-and-Prune schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowPruneResult {
    /// The final keep mask at the target density.
    pub mask: BinaryMask,
    /// Importance scores at the end of the schedule (after regrowth refreshes).
    pub final_scores: DenseMatrix,
    /// Densities visited by the schedule, ending at the target.
    pub density_schedule: Vec<f64>,
}

/// Runs the Grow-and-Prune schedule with the given pattern pruner.
///
/// # Errors
///
/// Propagates errors from the underlying pruner.
pub fn grow_and_prune<P: Pruner>(
    scores: &DenseMatrix,
    pruner: &P,
    target_density: f64,
    config: GrowPruneConfig,
) -> Result<GrowPruneResult> {
    let rounds = config.rounds.max(1);
    let mut working_scores = scores.clone();
    let mut density_schedule = Vec::with_capacity(rounds);

    for round in 0..rounds {
        // Linear density schedule from initial_density down to target_density.
        let t = if rounds == 1 {
            1.0
        } else {
            round as f64 / (rounds - 1) as f64
        };
        let density = config.initial_density + (target_density - config.initial_density) * t;
        let density = density.clamp(0.0, 1.0);
        density_schedule.push(density);

        let mask = pruner.prune(&working_scores, density)?;

        if round + 1 == rounds {
            return Ok(GrowPruneResult {
                mask,
                final_scores: working_scores,
                density_schedule,
            });
        }

        // Grow step: refresh the scores of the best pruned positions back to their
        // teacher magnitude so the next round can reconsider them; decay the rest so
        // the schedule actually commits to a structure over time.
        let (rows, cols) = working_scores.shape();
        let mut pruned_positions: Vec<(usize, f32)> = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if !mask.is_kept(r, c) {
                    pruned_positions.push((r * cols + c, scores.get(r, c)));
                }
            }
        }
        pruned_positions.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let grow = ((pruned_positions.len() as f64) * config.grow_fraction).round() as usize;
        for (flat, original) in pruned_positions.iter().take(grow) {
            working_scores.as_mut_slice()[*flat] = *original;
        }
        for (flat, _) in pruned_positions.iter().skip(grow) {
            working_scores.as_mut_slice()[*flat] *= 0.5;
        }
    }
    unreachable!("the loop always returns on the final round")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unstructured::UnstructuredPruner;
    use crate::ShflBwPruner;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use shfl_core::pattern::is_shfl_bw;

    fn scores(seed: u64, rows: usize, cols: usize) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(0.0f32..1.0))
    }

    #[test]
    fn final_mask_hits_the_target_density_and_pattern() {
        let s = scores(1, 64, 64);
        let result =
            grow_and_prune(&s, &ShflBwPruner::new(16), 0.2, GrowPruneConfig::default()).unwrap();
        assert!((result.mask.density() - 0.2).abs() < 0.02);
        assert!(is_shfl_bw(&result.mask, 16));
        assert_eq!(result.density_schedule.len(), 4);
        assert!((result.density_schedule.last().unwrap() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn schedule_is_monotonically_decreasing() {
        let s = scores(2, 32, 32);
        let result = grow_and_prune(
            &s,
            &UnstructuredPruner::new(),
            0.1,
            GrowPruneConfig {
                rounds: 5,
                grow_fraction: 0.2,
                initial_density: 0.9,
            },
        )
        .unwrap();
        for pair in result.density_schedule.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12);
        }
    }

    #[test]
    fn single_round_is_direct_pruning() {
        let s = scores(3, 32, 32);
        let pruner = UnstructuredPruner::new();
        let direct = pruner.prune(&s, 0.3).unwrap();
        let result = grow_and_prune(
            &s,
            &pruner,
            0.3,
            GrowPruneConfig {
                rounds: 1,
                grow_fraction: 0.1,
                initial_density: 0.8,
            },
        )
        .unwrap();
        assert_eq!(result.mask, direct);
    }

    #[test]
    fn multi_round_schedule_retains_at_least_as_much_score_as_one_shot() {
        let s = scores(4, 128, 128);
        let pruner = ShflBwPruner::new(32);
        let one_shot = pruner.prune(&s, 0.2).unwrap().retained_score(&s).unwrap();
        let scheduled = grow_and_prune(&s, &pruner, 0.2, GrowPruneConfig::default())
            .unwrap()
            .mask
            .retained_score(&s)
            .unwrap();
        // The schedule operates on decayed copies of the scores, but the final mask is
        // evaluated on the true scores; it should not be substantially worse.
        assert!(scheduled >= 0.95 * one_shot);
    }
}
