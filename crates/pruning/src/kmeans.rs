//! Balanced K-Means clustering of binary row masks.
//!
//! The Shfl-BW pattern search (Figure 5) clusters the rows of the relaxed unstructured
//! mask into groups of exactly `V` rows, so that rows keeping weights in similar
//! column positions end up in the same group — the heuristic being that the subsequent
//! vector-wise pruning will then be able to retain more of the important weights.
//!
//! This module implements a size-constrained (balanced) K-Means: standard centroid
//! updates, but the assignment step fills every cluster to exactly `V` members by
//! greedily assigning the globally closest (row, cluster) pairs while capacity
//! remains.

use rand::seq::SliceRandom;
use rand::Rng;
use shfl_core::mask::BinaryMask;
use shfl_core::{Error, Result};

/// Result of the balanced K-Means row clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct RowClustering {
    /// `groups[g]` lists the original row indices assigned to cluster `g`
    /// (each of length exactly `V`).
    pub groups: Vec<Vec<usize>>,
    /// The row permutation that places the rows of group 0 first, then group 1, ...
    /// (i.e. `permutation[new_row] = original_row`).
    pub permutation: Vec<usize>,
    /// Sum of squared distances of every row to its cluster centroid at convergence.
    pub inertia: f64,
}

/// Configuration of the balanced K-Means search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeansConfig {
    /// Number of Lloyd iterations.
    pub iterations: usize,
    /// Number of random restarts; the clustering with the lowest inertia wins.
    pub restarts: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            iterations: 10,
            restarts: 2,
        }
    }
}

/// Clusters the rows of `mask` into groups of exactly `group_size` rows using
/// balanced K-Means on the binary row vectors.
///
/// # Errors
///
/// Returns [`Error::InvalidGroupSize`] if `group_size` is zero or does not divide the
/// row count.
pub fn cluster_rows<R: Rng + ?Sized>(
    rng: &mut R,
    mask: &BinaryMask,
    group_size: usize,
    config: KMeansConfig,
) -> Result<RowClustering> {
    let rows = mask.rows();
    let cols = mask.cols();
    if group_size == 0 || !rows.is_multiple_of(group_size) {
        return Err(Error::InvalidGroupSize {
            group: group_size,
            dimension: rows,
        });
    }
    let k = rows / group_size;
    let row_vectors: Vec<Vec<f32>> = (0..rows)
        .map(|r| {
            mask.row(r)
                .iter()
                .map(|b| if *b { 1.0 } else { 0.0 })
                .collect()
        })
        .collect();

    let mut best: Option<RowClustering> = None;
    for _ in 0..config.restarts.max(1) {
        let clustering = run_once(
            rng,
            &row_vectors,
            rows,
            cols,
            k,
            group_size,
            config.iterations,
        );
        if best.as_ref().is_none_or(|b| clustering.inertia < b.inertia) {
            best = Some(clustering);
        }
    }
    Ok(best.expect("at least one restart runs"))
}

fn run_once<R: Rng + ?Sized>(
    rng: &mut R,
    row_vectors: &[Vec<f32>],
    rows: usize,
    cols: usize,
    k: usize,
    group_size: usize,
    iterations: usize,
) -> RowClustering {
    // Initialise centroids from a random sample of distinct rows.
    let mut indices: Vec<usize> = (0..rows).collect();
    indices.shuffle(rng);
    let mut centroids: Vec<Vec<f32>> = indices[..k]
        .iter()
        .map(|&i| row_vectors[i].clone())
        .collect();

    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for _ in 0..iterations.max(1) {
        groups = balanced_assignment(row_vectors, &centroids, group_size);
        // Update centroids as the mean of their members.
        for (g, members) in groups.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let mut mean = vec![0.0f32; cols];
            for &r in members {
                for (m, x) in mean.iter_mut().zip(row_vectors[r].iter()) {
                    *m += x;
                }
            }
            for m in &mut mean {
                *m /= members.len() as f32;
            }
            centroids[g] = mean;
        }
    }

    let mut inertia = 0.0f64;
    for (g, members) in groups.iter().enumerate() {
        for &r in members {
            inertia += squared_distance(&row_vectors[r], &centroids[g]);
        }
    }
    let permutation: Vec<usize> = groups.iter().flatten().copied().collect();
    RowClustering {
        groups,
        permutation,
        inertia,
    }
}

/// Assigns every row to a cluster such that each cluster receives exactly
/// `group_size` rows, preferring globally closest (row, cluster) pairs.
fn balanced_assignment(
    row_vectors: &[Vec<f32>],
    centroids: &[Vec<f32>],
    group_size: usize,
) -> Vec<Vec<usize>> {
    let rows = row_vectors.len();
    let k = centroids.len();
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(rows * k);
    for (r, row) in row_vectors.iter().enumerate() {
        for (g, centroid) in centroids.iter().enumerate() {
            pairs.push((squared_distance(row, centroid), r, g));
        }
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut assigned = vec![false; rows];
    for (_, r, g) in pairs {
        if !assigned[r] && groups[g].len() < group_size {
            groups[g].push(r);
            assigned[r] = true;
        }
    }
    // Any stragglers (possible when capacities filled early) go to the first cluster
    // with room.
    for (r, was_assigned) in assigned.iter_mut().enumerate() {
        if !*was_assigned {
            if let Some(group) = groups.iter_mut().find(|g| g.len() < group_size) {
                group.push(r);
                *was_assigned = true;
            }
        }
    }
    groups
}

fn squared_distance(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = f64::from(x - y);
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn groups_have_exact_size_and_cover_all_rows() {
        let mut rng = StdRng::seed_from_u64(5);
        let mask = BinaryMask::from_fn(24, 16, |r, c| (r + c) % 3 == 0);
        let clustering = cluster_rows(&mut rng, &mask, 4, KMeansConfig::default()).unwrap();
        assert_eq!(clustering.groups.len(), 6);
        for g in &clustering.groups {
            assert_eq!(g.len(), 4);
        }
        let mut all: Vec<usize> = clustering.permutation.clone();
        all.sort_unstable();
        assert_eq!(all, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn identical_rows_end_up_grouped_together() {
        // Two clearly separated row patterns, 4 rows each: with group size 4 the
        // clustering must recover them exactly.
        let mut rng = StdRng::seed_from_u64(7);
        let mask = BinaryMask::from_fn(8, 32, |r, c| if r % 2 == 0 { c < 16 } else { c >= 16 });
        let clustering = cluster_rows(&mut rng, &mask, 4, KMeansConfig::default()).unwrap();
        for group in &clustering.groups {
            let parity = group[0] % 2;
            assert!(
                group.iter().all(|r| r % 2 == parity),
                "group {group:?} mixes the two patterns"
            );
        }
        assert!(clustering.inertia < 1e-9);
    }

    #[test]
    fn rejects_bad_group_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let mask = BinaryMask::all_kept(10, 4);
        assert!(cluster_rows(&mut rng, &mask, 3, KMeansConfig::default()).is_err());
        assert!(cluster_rows(&mut rng, &mask, 0, KMeansConfig::default()).is_err());
    }

    #[test]
    fn more_restarts_never_increase_inertia() {
        let mut rng1 = StdRng::seed_from_u64(11);
        let mut rng2 = StdRng::seed_from_u64(11);
        let mask = BinaryMask::from_fn(32, 24, |r, c| (r * 7 + c * 3) % 5 == 0);
        let one = cluster_rows(
            &mut rng1,
            &mask,
            8,
            KMeansConfig {
                iterations: 8,
                restarts: 1,
            },
        )
        .unwrap();
        let many = cluster_rows(
            &mut rng2,
            &mask,
            8,
            KMeansConfig {
                iterations: 8,
                restarts: 4,
            },
        )
        .unwrap();
        assert!(many.inertia <= one.inertia + 1e-9);
    }
}
