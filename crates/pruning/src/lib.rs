//! # shfl-pruning — pruning algorithms for the Shfl-BW reproduction
//!
//! This crate implements the model-accuracy side of the paper (§5): given an
//! importance-score matrix (magnitude scores by default), decide which weights to keep
//! under each sparsity pattern.
//!
//! * [`importance`] — magnitude importance scores and per-block / per-vector score
//!   aggregation,
//! * [`unstructured`], [`block_wise`], [`vector_wise`], [`balanced`] — the baseline
//!   pattern pruners the paper compares against,
//! * [`kmeans`] — balanced K-Means clustering of binary row masks into groups of `V`
//!   rows (the row-grouping stage of Figure 5),
//! * [`shfl_bw`] — the paper's two-stage Shfl-BW pattern search: relaxed unstructured
//!   pre-pruning at `β = 2α`, K-Means row grouping, row shuffling, vector-wise pruning
//!   at the target density `α`, reverse shuffle,
//! * [`admm`] — the ADMM re-weighting workflow used for GNMT in the paper's §6.1,
//! * [`grow_prune`] — the Grow-and-Prune schedule used for Transformer and ResNet-50,
//! * [`trainer`] — a small synthetic-regression trainer used to measure the real
//!   quality impact of each pattern on a trainable workload (the accuracy-proxy
//!   substrate described in `DESIGN.md`).
//!
//! ## Example: prune a weight matrix into the Shfl-BW pattern
//!
//! ```
//! use shfl_core::{DenseMatrix, SparsePattern};
//! use shfl_pruning::{Pruner, shfl_bw::ShflBwPruner};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), shfl_core::Error> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let weights = DenseMatrix::random(&mut rng, 64, 128);
//! let pruner = ShflBwPruner::new(16);
//! let mask = pruner.prune(&weights.abs(), 0.25)?;
//! assert!((mask.density() - 0.25).abs() < 0.02);
//! assert!(SparsePattern::ShflBw { v: 16 }.validates(&mask));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod admm;
pub mod balanced;
pub mod block_wise;
pub mod grow_prune;
pub mod importance;
pub mod kmeans;
pub mod shfl_bw;
pub mod trainer;
pub mod unstructured;
pub mod vector_wise;

use shfl_core::mask::BinaryMask;
use shfl_core::matrix::DenseMatrix;
use shfl_core::Result;

/// A pattern pruner: given an importance-score matrix and a target non-zero ratio,
/// produce the keep/prune mask that maximises retained score subject to the pattern's
/// structural constraint.
pub trait Pruner {
    /// The pattern this pruner produces (used for labelling results).
    fn pattern(&self) -> shfl_core::SparsePattern;

    /// Produces the keep mask for `scores` at the target non-zero ratio `density`.
    ///
    /// # Errors
    ///
    /// Returns an error when `density` is outside `[0, 1]` or the score matrix shape
    /// is incompatible with the pattern's granularity.
    fn prune(&self, scores: &DenseMatrix, density: f64) -> Result<BinaryMask>;
}

pub use balanced::BalancedPruner;
pub use block_wise::BlockWisePruner;
pub use shfl_bw::{ShflBwPruneResult, ShflBwPruner};
pub use unstructured::UnstructuredPruner;
pub use vector_wise::VectorWisePruner;

/// Validates a density argument shared by all pruners.
pub(crate) fn validate_density(density: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&density) || density.is_nan() {
        Err(shfl_core::Error::InvalidDensity { value: density })
    } else {
        Ok(density)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_validation() {
        assert!(validate_density(0.5).is_ok());
        assert!(validate_density(0.0).is_ok());
        assert!(validate_density(1.0).is_ok());
        assert!(validate_density(-0.1).is_err());
        assert!(validate_density(1.5).is_err());
        assert!(validate_density(f64::NAN).is_err());
    }
}
