//! ADMM-based pruning preparation (the workflow the paper uses for GNMT, §6.1).
//!
//! ADMM (alternating direction method of multipliers) pruning re-shapes the weight
//! distribution *before* the hard pruning step: the weights are iteratively pulled
//! towards the nearest matrix that satisfies the sparsity pattern, so that when the
//! projection finally happens, the removed weights are already small and the accuracy
//! loss shrinks. We implement the standard three-step iteration
//!
//! ```text
//! Z_{t+1} = project_pattern(W_t + U_t)           // pattern projection
//! U_{t+1} = U_t + W_t − Z_{t+1}                  // dual update
//! W_{t+1} = argmin_W loss(W) + ρ/2‖W − Z + U‖²   // here: closed-form proximal step
//! ```
//!
//! where the loss term is the synthetic regression objective of [`crate::trainer`]
//! (keeping the weights close to the teacher solution), which admits a closed-form
//! proximal update — so the iteration exercises the same re-weighting dynamics as the
//! paper's training-based ADMM without requiring the WMT dataset.

use crate::Pruner;
use shfl_core::mask::BinaryMask;
use shfl_core::matrix::DenseMatrix;
use shfl_core::Result;

/// Configuration of the ADMM re-weighting loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmmConfig {
    /// Number of ADMM iterations.
    pub iterations: usize,
    /// Penalty parameter ρ balancing the loss term against the pattern constraint.
    pub rho: f64,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        AdmmConfig {
            iterations: 8,
            rho: 0.5,
        }
    }
}

/// Result of the ADMM pruning preparation.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmmResult {
    /// The re-weighted dense matrix right before the final projection.
    pub reweighted: DenseMatrix,
    /// The final pruned weights (re-weighted weights with the mask applied).
    pub pruned: DenseMatrix,
    /// The final keep mask.
    pub mask: BinaryMask,
    /// Fraction of the original weight energy (squared Frobenius norm) retained by the
    /// final pruned matrix.
    pub energy_retained: f64,
}

/// Runs ADMM re-weighting against the given pattern pruner and then applies the final
/// hard projection at `density`.
///
/// # Errors
///
/// Propagates errors from the underlying pruner (invalid density or geometry).
pub fn admm_prune<P: Pruner>(
    weights: &DenseMatrix,
    pruner: &P,
    density: f64,
    config: AdmmConfig,
) -> Result<AdmmResult> {
    let mut w = weights.clone();
    let (rows, cols) = w.shape();
    let mut u = DenseMatrix::zeros(rows, cols);

    for _ in 0..config.iterations {
        // Z-step: project (W + U) onto the pattern at the target density.
        let mut w_plus_u = w.clone();
        for (x, du) in w_plus_u.as_mut_slice().iter_mut().zip(u.as_slice()) {
            *x += du;
        }
        let mask = pruner.prune(&w_plus_u.abs(), density)?;
        let z = mask.apply(&w_plus_u)?;

        // U-step: dual ascent on the constraint W = Z.
        for ((du, wv), zv) in u
            .as_mut_slice()
            .iter_mut()
            .zip(w.as_slice())
            .zip(z.as_slice())
        {
            *du += wv - zv;
        }

        // W-step: proximal update pulling W towards Z − U while staying close to the
        // original (teacher) weights: W = (W₀ + ρ(Z − U)) / (1 + ρ).
        let rho = config.rho as f32;
        for ((wv, w0), (zv, du)) in w
            .as_mut_slice()
            .iter_mut()
            .zip(weights.as_slice())
            .zip(z.as_slice().iter().zip(u.as_slice()))
        {
            *wv = (w0 + rho * (zv - du)) / (1.0 + rho);
        }
    }

    let mask = pruner.prune(&w.abs(), density)?;
    let pruned = mask.apply(&w)?;
    let original_energy = weights.frobenius_norm().powi(2);
    let retained_energy = pruned.frobenius_norm().powi(2);
    Ok(AdmmResult {
        reweighted: w,
        pruned,
        mask,
        energy_retained: if original_energy > 0.0 {
            retained_energy / original_energy
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector_wise::VectorWisePruner;
    use crate::ShflBwPruner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shfl_core::pattern::is_vector_wise;

    #[test]
    fn admm_mask_satisfies_the_pattern_and_density() {
        let mut rng = StdRng::seed_from_u64(10);
        let weights = DenseMatrix::random(&mut rng, 64, 64);
        let pruner = VectorWisePruner::new(16);
        let result = admm_prune(&weights, &pruner, 0.25, AdmmConfig::default()).unwrap();
        assert!(is_vector_wise(&result.mask, 16));
        assert!((result.mask.density() - 0.25).abs() < 0.01);
        assert_eq!(result.pruned.nnz(), result.mask.kept_count());
    }

    #[test]
    fn reweighting_concentrates_energy_in_the_kept_positions() {
        // Compared to pruning the raw weights directly, ADMM re-weighting should
        // retain at least as much of the weight energy after projection.
        let mut rng = StdRng::seed_from_u64(11);
        let weights = DenseMatrix::random(&mut rng, 64, 128);
        let pruner = VectorWisePruner::new(16);
        let density = 0.2;
        let direct_mask = pruner.prune(&weights.abs(), density).unwrap();
        let direct_energy = direct_mask
            .apply(&weights)
            .unwrap()
            .frobenius_norm()
            .powi(2)
            / weights.frobenius_norm().powi(2);
        let admm = admm_prune(&weights, &pruner, density, AdmmConfig::default()).unwrap();
        assert!(
            admm.energy_retained >= direct_energy - 1e-6,
            "ADMM retained {:.4} vs direct {:.4}",
            admm.energy_retained,
            direct_energy
        );
    }

    #[test]
    fn works_with_the_shfl_bw_pruner() {
        let mut rng = StdRng::seed_from_u64(12);
        let weights = DenseMatrix::random(&mut rng, 64, 64);
        let pruner = ShflBwPruner::new(16);
        let result = admm_prune(
            &weights,
            &pruner,
            0.25,
            AdmmConfig {
                iterations: 4,
                rho: 0.5,
            },
        )
        .unwrap();
        assert!((result.mask.density() - 0.25).abs() < 0.02);
        assert!(result.energy_retained > 0.0 && result.energy_retained <= 1.0);
    }

    #[test]
    fn zero_iterations_degenerate_to_direct_pruning() {
        let mut rng = StdRng::seed_from_u64(13);
        let weights = DenseMatrix::random(&mut rng, 32, 32);
        let pruner = VectorWisePruner::new(8);
        let result = admm_prune(
            &weights,
            &pruner,
            0.5,
            AdmmConfig {
                iterations: 0,
                rho: 0.5,
            },
        )
        .unwrap();
        let direct = pruner.prune(&weights.abs(), 0.5).unwrap();
        assert_eq!(result.mask, direct);
        assert_eq!(result.reweighted, weights);
    }
}
