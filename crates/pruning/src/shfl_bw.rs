//! The Shfl-BW pattern search algorithm (the paper's Figure 5).
//!
//! Given an importance-score matrix and a target non-zero ratio `α`, the search
//! proceeds in two stages:
//!
//! 1. **Row-group search.** Apply *unstructured* pruning at a relaxed density
//!    `β = 2α` (clamped to 1) to obtain a binary mask that reveals which column
//!    positions matter for each row, then cluster the rows of that mask into groups of
//!    exactly `V` with balanced K-Means ([`crate::kmeans`]). Rows that keep weights in
//!    similar columns end up in the same group.
//! 2. **Pruning.** Shuffle the rows of the score matrix by the discovered grouping,
//!    apply ordinary vector-wise pruning at the target density `α`, and reverse the
//!    shuffle so the final mask is expressed in the original row order.
//!
//! The result is a mask that satisfies the Shfl-BW structural constraint (each group
//! of `V` rows — under the discovered permutation — shares one column pattern) while
//! retaining noticeably more importance score than plain vector-wise or block-wise
//! pruning at the same density (the paper's Table 1).

use crate::kmeans::{cluster_rows, KMeansConfig};
use crate::unstructured::UnstructuredPruner;
use crate::vector_wise::VectorWisePruner;
use crate::{validate_density, Pruner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use shfl_core::mask::BinaryMask;
use shfl_core::matrix::DenseMatrix;
use shfl_core::{Error, Result, SparsePattern};

/// Result of the Shfl-BW pattern search: the mask in the original row order plus the
/// row permutation that groups matching rows (needed to build a
/// [`shfl_core::formats::ShflBwMatrix`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShflBwPruneResult {
    /// Keep mask in the original row order.
    pub mask: BinaryMask,
    /// Row permutation used for grouping: `permutation[new_row] = original_row`.
    pub permutation: Vec<usize>,
    /// Total importance score retained by the mask.
    pub retained_score: f64,
}

/// The paper's Shfl-BW pruner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShflBwPruner {
    v: usize,
    /// Relaxation factor for the pre-pruning density (`β = relaxation × α`); the paper
    /// finds 2.0 to work best.
    relaxation: f64,
    kmeans: KMeansConfig,
    seed: u64,
}

impl ShflBwPruner {
    /// Creates a Shfl-BW pruner with vector length `v`, the paper's `β = 2α`
    /// relaxation, and default K-Means settings.
    pub fn new(v: usize) -> Self {
        ShflBwPruner {
            v,
            relaxation: 2.0,
            kmeans: KMeansConfig::default(),
            seed: DEFAULT_SEED,
        }
    }

    /// Overrides the pre-pruning relaxation factor (`β = relaxation × α`).
    pub fn with_relaxation(mut self, relaxation: f64) -> Self {
        self.relaxation = relaxation.max(1.0);
        self
    }

    /// Overrides the K-Means configuration.
    pub fn with_kmeans(mut self, kmeans: KMeansConfig) -> Self {
        self.kmeans = kmeans;
        self
    }

    /// Overrides the random seed used by the K-Means restarts (the search is otherwise
    /// deterministic).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Vector length `V`.
    pub fn vector_size(&self) -> usize {
        self.v
    }

    /// Runs the full two-stage search, returning the mask, the row grouping
    /// permutation and the retained score.
    ///
    /// # Errors
    ///
    /// Returns an error when the density is invalid or `V` does not divide the row
    /// count.
    pub fn prune_with_permutation(
        &self,
        scores: &DenseMatrix,
        density: f64,
    ) -> Result<ShflBwPruneResult> {
        let density = validate_density(density)?;
        let (rows, _cols) = scores.shape();
        if self.v == 0 || rows % self.v != 0 {
            return Err(Error::InvalidGroupSize {
                group: self.v,
                dimension: rows,
            });
        }

        // Stage 1: relaxed unstructured pre-pruning reveals the important positions.
        let beta = (density * self.relaxation).min(1.0);
        let relaxed_mask = UnstructuredPruner::new().prune(scores, beta)?;

        // Cluster rows of the relaxed mask into groups of V.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let clustering = cluster_rows(&mut rng, &relaxed_mask, self.v, self.kmeans)?;
        let permutation = clustering.permutation;

        // Stage 2: shuffle, vector-wise prune at the target density, reverse shuffle.
        let shuffled_scores = scores.permuted_rows(&permutation)?;
        let shuffled_mask = VectorWisePruner::new(self.v).prune(&shuffled_scores, density)?;

        let mut mask = BinaryMask::all_pruned(rows, scores.cols());
        for (new_row, &original_row) in permutation.iter().enumerate() {
            for c in 0..scores.cols() {
                if shuffled_mask.is_kept(new_row, c) {
                    mask.set(original_row, c, true);
                }
            }
        }
        let retained_score = mask.retained_score(scores)?;
        Ok(ShflBwPruneResult {
            mask,
            permutation,
            retained_score,
        })
    }
}

impl Pruner for ShflBwPruner {
    fn pattern(&self) -> SparsePattern {
        SparsePattern::ShflBw { v: self.v }
    }

    fn prune(&self, scores: &DenseMatrix, density: f64) -> Result<BinaryMask> {
        Ok(self.prune_with_permutation(scores, density)?.mask)
    }
}

/// Fixed default seed ("shfl-bw" as bytes) so search results are reproducible
/// run-to-run.
const DEFAULT_SEED: u64 = u64::from_le_bytes(*b"shfl-bw\0");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use shfl_core::pattern::{is_shfl_bw, is_vector_wise};

    fn random_scores(seed: u64, rows: usize, cols: usize) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(0.0f32..1.0))
    }

    #[test]
    fn produces_shfl_bw_masks_at_the_target_density() {
        let scores = random_scores(1, 64, 128);
        let pruner = ShflBwPruner::new(16);
        for density in [0.1, 0.2, 0.25] {
            let result = pruner.prune_with_permutation(&scores, density).unwrap();
            assert!((result.mask.density() - density).abs() < 0.02);
            assert!(is_shfl_bw(&result.mask, 16));
            // The shuffled mask must be vector-wise under the discovered permutation.
            let shuffled = result.mask.permuted_rows(&result.permutation).unwrap();
            assert!(is_vector_wise(&shuffled, 16));
        }
    }

    #[test]
    fn retains_more_score_than_vector_wise_without_shuffling() {
        // The central accuracy claim of the paper: at the same density and V, the
        // shuffled search keeps more importance mass than plain vector-wise pruning.
        let scores = random_scores(2, 128, 256);
        let density = 0.2;
        let v = 32;
        let shfl = ShflBwPruner::new(v)
            .prune_with_permutation(&scores, density)
            .unwrap();
        let vw_mask = VectorWisePruner::new(v).prune(&scores, density).unwrap();
        let vw_score = vw_mask.retained_score(&scores).unwrap();
        assert!(
            shfl.retained_score > vw_score,
            "Shfl-BW retained {} vs vector-wise {}",
            shfl.retained_score,
            vw_score
        );
    }

    #[test]
    fn recovers_a_perfect_grouping_when_one_exists() {
        // Construct scores whose top positions form a scattered Shfl-BW structure:
        // rows with the same residue mod 4 share their important columns.
        let mut rng = StdRng::seed_from_u64(3);
        let scores = DenseMatrix::from_fn(32, 64, |r, c| {
            let important = (c + 7 * (r % 4)) % 4 == 0;
            if important {
                1.0 + rng.gen_range(0.0f32..0.1)
            } else {
                rng.gen_range(0.0f32..0.01)
            }
        });
        let result = ShflBwPruner::new(8)
            .prune_with_permutation(&scores, 0.25)
            .unwrap();
        // All the "important" weights are retained.
        let mut kept_important = 0;
        let mut total_important = 0;
        for r in 0..32 {
            for c in 0..64 {
                if (c + 7 * (r % 4)) % 4 == 0 {
                    total_important += 1;
                    if result.mask.is_kept(r, c) {
                        kept_important += 1;
                    }
                }
            }
        }
        assert_eq!(kept_important, total_important);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let scores = random_scores(9, 64, 64);
        let a = ShflBwPruner::new(16)
            .with_seed(42)
            .prune_with_permutation(&scores, 0.25)
            .unwrap();
        let b = ShflBwPruner::new(16)
            .with_seed(42)
            .prune_with_permutation(&scores, 0.25)
            .unwrap();
        assert_eq!(a.mask, b.mask);
        assert_eq!(a.permutation, b.permutation);
    }

    #[test]
    fn rejects_bad_geometry_and_density() {
        let scores = random_scores(4, 30, 16);
        assert!(ShflBwPruner::new(16).prune(&scores, 0.5).is_err());
        let scores = random_scores(4, 32, 16);
        assert!(ShflBwPruner::new(0).prune(&scores, 0.5).is_err());
        assert!(ShflBwPruner::new(16).prune(&scores, 1.5).is_err());
    }

    #[test]
    fn relaxation_below_one_is_clamped() {
        let scores = random_scores(5, 32, 32);
        let pruner = ShflBwPruner::new(8).with_relaxation(0.1);
        let result = pruner.prune_with_permutation(&scores, 0.25).unwrap();
        assert!((result.mask.density() - 0.25).abs() < 0.02);
    }

    #[test]
    fn pattern_reports_v() {
        assert_eq!(
            ShflBwPruner::new(64).pattern(),
            SparsePattern::ShflBw { v: 64 }
        );
        assert_eq!(ShflBwPruner::new(64).vector_size(), 64);
    }
}
