//! A small synthetic-regression trainer used as the accuracy-measurement substrate.
//!
//! The paper measures model quality (BLEU / Top-1) after pruning and fine-tuning on
//! WMT / ImageNet, which are unavailable here. This module provides the substitute
//! described in `DESIGN.md`: a teacher–student regression task
//!
//! * a *teacher* weight matrix `W*` generates targets `y = W* · x` for random inputs,
//! * the *student* starts from the teacher weights, is pruned with a mask, and its
//!   kept weights are fine-tuned by SGD on the same task,
//! * the remaining mean-squared error measures how much capacity the pattern removed.
//!
//! The relative ordering of patterns on this task (unstructured ≥ Shfl-BW ≥ VW ≥ BW at
//! equal density) is what the accuracy proxy in `shfl-models` is calibrated against.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shfl_core::mask::BinaryMask;
use shfl_core::matrix::DenseMatrix;
use shfl_core::{Error, Result};

/// Configuration of the fine-tuning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Number of SGD steps.
    pub steps: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Random seed for data generation and SGD sampling.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            steps: 200,
            batch_size: 32,
            learning_rate: 0.05,
            seed: 7,
        }
    }
}

/// Outcome of pruning + fine-tuning the student model.
#[derive(Debug, Clone, PartialEq)]
pub struct FineTuneResult {
    /// Mean-squared error of the pruned student *before* fine-tuning.
    pub initial_mse: f64,
    /// Mean-squared error after fine-tuning the kept weights.
    pub final_mse: f64,
    /// Mean-squared error of a dense (unpruned) student on the same evaluation set —
    /// the noise floor of the task.
    pub dense_mse: f64,
    /// The fine-tuned student weights (pruned positions stay exactly zero).
    pub student: DenseMatrix,
}

impl FineTuneResult {
    /// Quality degradation relative to the dense model (`final_mse - dense_mse`),
    /// the quantity the accuracy proxy maps to BLEU / Top-1 drops.
    pub fn degradation(&self) -> f64 {
        (self.final_mse - self.dense_mse).max(0.0)
    }
}

/// Prunes the teacher weights with `mask` and fine-tunes the kept weights on the
/// synthetic regression task.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] if the mask shape does not match the teacher.
pub fn finetune_pruned_model(
    teacher: &DenseMatrix,
    mask: &BinaryMask,
    config: TrainerConfig,
) -> Result<FineTuneResult> {
    if teacher.shape() != mask.shape() {
        return Err(Error::ShapeMismatch {
            context: format!(
                "mask {:?} does not match teacher {:?}",
                mask.shape(),
                teacher.shape()
            ),
        });
    }
    let (out_dim, in_dim) = teacher.shape();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Inputs are drawn from a low-dimensional latent space mixed through a fixed
    // random matrix, plus a little isotropic noise. Correlated inputs are what make
    // fine-tuning meaningful: the kept weights can partially compensate for pruned
    // ones, exactly as redundant features allow in a real network.
    let latent_dim = (in_dim / 4).max(1);
    let mixing: Vec<Vec<f32>> = (0..in_dim)
        .map(|_| (0..latent_dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let sample_input = |rng: &mut StdRng| -> Vec<f32> {
        let z: Vec<f32> = (0..latent_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        mixing
            .iter()
            .map(|row| {
                let mixed: f32 = row.iter().zip(z.iter()).map(|(m, zi)| m * zi).sum();
                mixed / (latent_dim as f32).sqrt() + 0.05 * rng.gen_range(-1.0f32..1.0)
            })
            .collect()
    };

    // Fixed evaluation set.
    let eval_inputs: Vec<Vec<f32>> = (0..64).map(|_| sample_input(&mut rng)).collect();

    let mut student = mask.apply(teacher)?;
    let initial_mse = evaluate(&student, teacher, &eval_inputs);
    let dense_mse = evaluate(teacher, teacher, &eval_inputs);

    for _ in 0..config.steps {
        // One SGD step on a fresh mini-batch.
        let mut gradient = DenseMatrix::zeros(out_dim, in_dim);
        for _ in 0..config.batch_size {
            let x: Vec<f32> = sample_input(&mut rng);
            let y_teacher = matvec(teacher, &x);
            let y_student = matvec(&student, &x);
            for o in 0..out_dim {
                let err = y_student[o] - y_teacher[o];
                let grad_row = gradient.row_mut(o);
                for (i, xi) in x.iter().enumerate() {
                    grad_row[i] += err * xi;
                }
            }
        }
        let scale = config.learning_rate / config.batch_size as f32;
        for o in 0..out_dim {
            for i in 0..in_dim {
                if mask.is_kept(o, i) {
                    let updated = student.get(o, i) - scale * gradient.get(o, i);
                    student.set(o, i, updated);
                }
            }
        }
    }

    let final_mse = evaluate(&student, teacher, &eval_inputs);
    Ok(FineTuneResult {
        initial_mse,
        final_mse,
        dense_mse,
        student,
    })
}

fn matvec(w: &DenseMatrix, x: &[f32]) -> Vec<f32> {
    let (rows, cols) = w.shape();
    (0..rows)
        .map(|r| {
            let row = w.row(r);
            (0..cols).map(|c| row[c] * x[c]).sum()
        })
        .collect()
}

fn evaluate(student: &DenseMatrix, teacher: &DenseMatrix, inputs: &[Vec<f32>]) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for x in inputs {
        let ys = matvec(student, x);
        let yt = matvec(teacher, x);
        for (a, b) in ys.iter().zip(yt.iter()) {
            let d = f64::from(a - b);
            total += d * d;
            count += 1;
        }
    }
    total / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pruner, ShflBwPruner, UnstructuredPruner, VectorWisePruner};

    fn teacher(seed: u64, rows: usize, cols: usize) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        DenseMatrix::random(&mut rng, rows, cols)
    }

    #[test]
    fn dense_mask_has_zero_degradation() {
        let w = teacher(1, 16, 32);
        let mask = BinaryMask::all_kept(16, 32);
        let result = finetune_pruned_model(&w, &mask, TrainerConfig::default()).unwrap();
        assert!(result.degradation() < 1e-9);
        assert!(result.dense_mse < 1e-9);
    }

    #[test]
    fn finetuning_reduces_the_error_of_a_pruned_model() {
        let w = teacher(2, 24, 48);
        let mask = UnstructuredPruner::new().prune(&w.abs(), 0.5).unwrap();
        let result = finetune_pruned_model(&w, &mask, TrainerConfig::default()).unwrap();
        assert!(
            result.final_mse < result.initial_mse,
            "final {:.4} vs initial {:.4}",
            result.final_mse,
            result.initial_mse
        );
    }

    #[test]
    fn pruned_positions_stay_zero_after_finetuning() {
        let w = teacher(3, 16, 16);
        let mask = VectorWisePruner::new(4).prune(&w.abs(), 0.25).unwrap();
        let result = finetune_pruned_model(&w, &mask, TrainerConfig::default()).unwrap();
        for r in 0..16 {
            for c in 0..16 {
                if !mask.is_kept(r, c) {
                    assert_eq!(result.student.get(r, c), 0.0);
                }
            }
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let w = teacher(4, 8, 8);
        let mask = BinaryMask::all_kept(4, 4);
        assert!(finetune_pruned_model(&w, &mask, TrainerConfig::default()).is_err());
    }

    #[test]
    fn shfl_bw_degrades_less_than_plain_vector_wise() {
        // The end-to-end quality claim on the trainable substrate: at the same density
        // and V, the Shfl-BW mask leaves the student closer to the teacher than the
        // plain vector-wise mask.
        let w = teacher(5, 32, 64);
        let density = 0.25;
        let config = TrainerConfig {
            steps: 120,
            ..TrainerConfig::default()
        };
        let shfl_mask = ShflBwPruner::new(8).prune(&w.abs(), density).unwrap();
        let vw_mask = VectorWisePruner::new(8).prune(&w.abs(), density).unwrap();
        let shfl = finetune_pruned_model(&w, &shfl_mask, config).unwrap();
        let vw = finetune_pruned_model(&w, &vw_mask, config).unwrap();
        assert!(
            shfl.degradation() <= vw.degradation() * 1.05,
            "Shfl-BW degradation {:.5} vs VW {:.5}",
            shfl.degradation(),
            vw.degradation()
        );
    }
}
