//! Balanced N:M pruning (the A100's 2-in-4 pattern): keep the `m` highest-scoring
//! weights inside every aligned group of `n` consecutive elements of a row.

use crate::{validate_density, Pruner};
use shfl_core::mask::BinaryMask;
use shfl_core::matrix::DenseMatrix;
use shfl_core::{Error, Result, SparsePattern};

/// Balanced N:M pruner. The density is fixed by the pattern (`m / n`); the `density`
/// argument passed to [`Pruner::prune`] is validated but otherwise ignored, matching
/// the hardware constraint the paper highlights (only 50% on A100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalancedPruner {
    m: usize,
    n: usize,
}

impl BalancedPruner {
    /// Creates an N:M pruner keeping `m` weights per group of `n`.
    pub fn new(m: usize, n: usize) -> Self {
        BalancedPruner { m, n }
    }

    /// The A100's 2-in-4 configuration.
    pub fn two_in_four() -> Self {
        BalancedPruner { m: 2, n: 4 }
    }

    /// The density this pattern enforces (`m / n`).
    pub fn enforced_density(&self) -> f64 {
        self.m as f64 / self.n as f64
    }
}

impl Pruner for BalancedPruner {
    fn pattern(&self) -> SparsePattern {
        SparsePattern::Balanced {
            m: self.m,
            n: self.n,
        }
    }

    fn prune(&self, scores: &DenseMatrix, density: f64) -> Result<BinaryMask> {
        validate_density(density)?;
        if self.m == 0 || self.n == 0 || self.m > self.n {
            return Err(Error::InvalidBalancedShape {
                m: self.m,
                n: self.n,
            });
        }
        let (rows, cols) = scores.shape();
        if cols % self.n != 0 {
            return Err(Error::InvalidGroupSize {
                group: self.n,
                dimension: cols,
            });
        }
        let mut mask = BinaryMask::all_pruned(rows, cols);
        for r in 0..rows {
            for g in 0..cols / self.n {
                let group: Vec<f32> = (0..self.n).map(|i| scores.get(r, g * self.n + i)).collect();
                for i in crate::importance::top_k_indices(&group, self.m) {
                    mask.set(r, g * self.n + i, true);
                }
            }
        }
        Ok(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shfl_core::pattern::is_balanced;

    #[test]
    fn produces_balanced_masks_at_half_density() {
        let mut rng = StdRng::seed_from_u64(4);
        let scores = DenseMatrix::random(&mut rng, 32, 64).abs();
        let mask = BalancedPruner::two_in_four().prune(&scores, 0.5).unwrap();
        assert!(is_balanced(&mask, 2, 4));
        assert!((mask.density() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn keeps_the_largest_in_each_group() {
        let scores = DenseMatrix::from_vec(1, 4, vec![0.9, 0.1, 0.5, 0.2]).unwrap();
        let mask = BalancedPruner::two_in_four().prune(&scores, 0.5).unwrap();
        assert!(mask.is_kept(0, 0) && mask.is_kept(0, 2));
        assert!(!mask.is_kept(0, 1) && !mask.is_kept(0, 3));
    }

    #[test]
    fn rejects_bad_parameters() {
        let scores = DenseMatrix::zeros(4, 6);
        assert!(BalancedPruner::two_in_four().prune(&scores, 0.5).is_err());
        let scores = DenseMatrix::zeros(4, 8);
        assert!(BalancedPruner::new(0, 4).prune(&scores, 0.5).is_err());
        assert!(BalancedPruner::new(5, 4).prune(&scores, 0.5).is_err());
        assert!(BalancedPruner::two_in_four().prune(&scores, 7.0).is_err());
    }

    #[test]
    fn enforced_density_is_m_over_n() {
        assert!((BalancedPruner::two_in_four().enforced_density() - 0.5).abs() < 1e-12);
        assert!((BalancedPruner::new(1, 4).enforced_density() - 0.25).abs() < 1e-12);
    }
}
