//! Unstructured (element-wise magnitude) pruning.

use crate::{validate_density, Pruner};
use shfl_core::mask::BinaryMask;
use shfl_core::matrix::DenseMatrix;
use shfl_core::{Result, SparsePattern};

/// Keeps the globally top-scoring `density` fraction of individual weights.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnstructuredPruner;

impl UnstructuredPruner {
    /// Creates an unstructured pruner.
    pub fn new() -> Self {
        UnstructuredPruner
    }
}

impl Pruner for UnstructuredPruner {
    fn pattern(&self) -> SparsePattern {
        SparsePattern::Unstructured
    }

    fn prune(&self, scores: &DenseMatrix, density: f64) -> Result<BinaryMask> {
        let density = validate_density(density)?;
        let (rows, cols) = scores.shape();
        let total = rows * cols;
        let keep = ((total as f64) * density).round() as usize;
        let kept = crate::importance::top_k_indices(scores.as_slice(), keep);
        let mut mask = BinaryMask::all_pruned(rows, cols);
        for flat in kept {
            mask.set(flat / cols, flat % cols, true);
        }
        Ok(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keeps_exactly_the_requested_fraction() {
        let mut rng = StdRng::seed_from_u64(1);
        let scores = DenseMatrix::random(&mut rng, 32, 32).abs();
        for density in [0.1, 0.25, 0.5, 0.9] {
            let mask = UnstructuredPruner::new().prune(&scores, density).unwrap();
            let expected = ((32.0 * 32.0) * density).round() as usize;
            assert_eq!(mask.kept_count(), expected);
        }
    }

    #[test]
    fn keeps_the_largest_scores() {
        let scores = DenseMatrix::from_vec(2, 2, vec![0.1, 0.9, 0.5, 0.3]).unwrap();
        let mask = UnstructuredPruner::new().prune(&scores, 0.5).unwrap();
        assert!(mask.is_kept(0, 1));
        assert!(mask.is_kept(1, 0));
        assert!(!mask.is_kept(0, 0));
    }

    #[test]
    fn extreme_densities() {
        let scores = DenseMatrix::from_fn(4, 4, |r, c| (r + c) as f32);
        assert_eq!(
            UnstructuredPruner::new()
                .prune(&scores, 0.0)
                .unwrap()
                .kept_count(),
            0
        );
        assert_eq!(
            UnstructuredPruner::new()
                .prune(&scores, 1.0)
                .unwrap()
                .kept_count(),
            16
        );
        assert!(UnstructuredPruner::new().prune(&scores, 1.2).is_err());
    }

    #[test]
    fn pattern_label() {
        assert_eq!(
            UnstructuredPruner::new().pattern(),
            SparsePattern::Unstructured
        );
    }
}
