//! Block-wise pruning: keep or prune whole `V×V` blocks by their aggregate score.
//!
//! The paper notes (§5) that for block-wise patterns a greedy method is optimal:
//! selecting the highest-scoring blocks until the density target is met maximises the
//! retained score, because block choices are independent.

use crate::{validate_density, Pruner};
use shfl_core::mask::BinaryMask;
use shfl_core::matrix::DenseMatrix;
use shfl_core::{Error, Result, SparsePattern};

/// Greedy block-wise pruner with `V×V` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockWisePruner {
    v: usize,
}

impl BlockWisePruner {
    /// Creates a block-wise pruner with block edge `v`.
    pub fn new(v: usize) -> Self {
        BlockWisePruner { v }
    }

    /// Block edge length.
    pub fn block_size(&self) -> usize {
        self.v
    }
}

impl Pruner for BlockWisePruner {
    fn pattern(&self) -> SparsePattern {
        SparsePattern::BlockWise { v: self.v }
    }

    fn prune(&self, scores: &DenseMatrix, density: f64) -> Result<BinaryMask> {
        let density = validate_density(density)?;
        let (rows, cols) = scores.shape();
        if self.v == 0 || rows % self.v != 0 {
            return Err(Error::InvalidGroupSize {
                group: self.v,
                dimension: rows,
            });
        }
        if cols % self.v != 0 {
            return Err(Error::InvalidGroupSize {
                group: self.v,
                dimension: cols,
            });
        }
        let block_scores = crate::importance::block_scores(scores, self.v);
        let blocks_total = block_scores.len();
        let keep_blocks = ((blocks_total as f64) * density).round() as usize;
        let kept = crate::importance::top_k_indices(block_scores.as_slice(), keep_blocks);
        let block_cols = cols / self.v;
        let mut mask = BinaryMask::all_pruned(rows, cols);
        for flat in kept {
            let br = flat / block_cols;
            let bc = flat % block_cols;
            for r in 0..self.v {
                for c in 0..self.v {
                    mask.set(br * self.v + r, bc * self.v + c, true);
                }
            }
        }
        Ok(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shfl_core::pattern::is_block_wise;

    #[test]
    fn produces_block_wise_masks_at_the_target_density() {
        let mut rng = StdRng::seed_from_u64(2);
        let scores = DenseMatrix::random(&mut rng, 64, 64).abs();
        for density in [0.25, 0.5] {
            let mask = BlockWisePruner::new(16).prune(&scores, density).unwrap();
            assert!(is_block_wise(&mask, 16));
            assert!((mask.density() - density).abs() < 1e-9);
        }
    }

    #[test]
    fn keeps_the_highest_scoring_blocks() {
        // One block has overwhelmingly larger scores.
        let scores = DenseMatrix::from_fn(4, 4, |r, c| if r < 2 && c < 2 { 10.0 } else { 0.1 });
        let mask = BlockWisePruner::new(2).prune(&scores, 0.25).unwrap();
        assert!(mask.is_kept(0, 0) && mask.is_kept(1, 1));
        assert!(!mask.is_kept(2, 2));
    }

    #[test]
    fn rejects_bad_geometry() {
        let scores = DenseMatrix::zeros(30, 32);
        assert!(BlockWisePruner::new(16).prune(&scores, 0.5).is_err());
        let scores = DenseMatrix::zeros(32, 30);
        assert!(BlockWisePruner::new(16).prune(&scores, 0.5).is_err());
        let scores = DenseMatrix::zeros(32, 32);
        assert!(BlockWisePruner::new(0).prune(&scores, 0.5).is_err());
        assert!(BlockWisePruner::new(16).prune(&scores, -0.5).is_err());
    }

    #[test]
    fn pattern_reports_v() {
        assert_eq!(
            BlockWisePruner::new(32).pattern(),
            SparsePattern::BlockWise { v: 32 }
        );
        assert_eq!(BlockWisePruner::new(32).block_size(), 32);
    }
}
