//! Importance scores.
//!
//! The paper uses the absolute value of each weight as its importance score
//! (magnitude pruning, following Han et al.), and block/vector pruners aggregate the
//! per-weight scores over the block or vector they decide on.

use shfl_core::matrix::DenseMatrix;

/// Magnitude importance: the element-wise absolute value of the weights.
pub fn magnitude_scores(weights: &DenseMatrix) -> DenseMatrix {
    weights.abs()
}

/// Sum of scores inside each `v×v` block, returned as a `(rows/v) × (cols/v)` matrix.
///
/// # Panics
///
/// Panics if `v` is zero or does not divide both dimensions.
pub fn block_scores(scores: &DenseMatrix, v: usize) -> DenseMatrix {
    let (rows, cols) = scores.shape();
    assert!(
        v > 0 && rows % v == 0 && cols % v == 0,
        "v must divide both dimensions"
    );
    DenseMatrix::from_fn(rows / v, cols / v, |br, bc| {
        let mut sum = 0.0f32;
        for r in 0..v {
            for c in 0..v {
                sum += scores.get(br * v + r, bc * v + c);
            }
        }
        sum
    })
}

/// Sum of scores of each `v×1` vector, returned as a `(rows/v) × cols` matrix whose
/// entry `(g, c)` is the score of column `c` within row group `g`.
///
/// # Panics
///
/// Panics if `v` is zero or does not divide the row count.
pub fn vector_scores(scores: &DenseMatrix, v: usize) -> DenseMatrix {
    let (rows, cols) = scores.shape();
    assert!(v > 0 && rows % v == 0, "v must divide the row count");
    DenseMatrix::from_fn(rows / v, cols, |g, c| {
        (0..v).map(|r| scores.get(g * v + r, c)).sum()
    })
}

/// Indices of the `k` largest values of a slice, in descending score order. Ties are
/// broken by the lower index to keep the result deterministic.
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(k.min(values.len()));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_is_absolute_value() {
        let w = DenseMatrix::from_vec(1, 3, vec![-2.0, 0.5, 0.0]).unwrap();
        assert_eq!(magnitude_scores(&w).as_slice(), &[2.0, 0.5, 0.0]);
    }

    #[test]
    fn block_scores_sum_blocks() {
        let s = DenseMatrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let b = block_scores(&s, 2);
        assert_eq!(b.shape(), (2, 2));
        // Top-left block holds 0,1,4,5; bottom-right holds 10,11,14,15.
        assert_eq!(b.get(0, 0), 10.0);
        assert_eq!(b.get(1, 1), 50.0);
    }

    #[test]
    fn vector_scores_sum_columns_per_group() {
        let s = DenseMatrix::from_fn(4, 3, |r, _| r as f32);
        let v = vector_scores(&s, 2);
        assert_eq!(v.shape(), (2, 3));
        assert_eq!(v.get(0, 0), 1.0);
        assert_eq!(v.get(1, 2), 5.0);
    }

    #[test]
    #[should_panic(expected = "v must divide")]
    fn block_scores_reject_bad_v() {
        block_scores(&DenseMatrix::zeros(4, 6), 4);
    }

    #[test]
    fn top_k_is_descending_and_deterministic() {
        let v = vec![0.5, 2.0, 2.0, -1.0, 3.0];
        assert_eq!(top_k_indices(&v, 3), vec![4, 1, 2]);
        assert_eq!(top_k_indices(&v, 10).len(), 5);
        assert!(top_k_indices(&v, 0).is_empty());
    }
}
