//! Vector-wise pruning: keep or prune whole `V×1` column vectors inside each group of
//! `V` consecutive rows.
//!
//! Each row group keeps the same number of columns (the per-group quota implied by the
//! target density), choosing the columns with the highest aggregate score inside the
//! group — the "vector-wise prune" stage of the paper's Figure 5.

use crate::{validate_density, Pruner};
use shfl_core::mask::BinaryMask;
use shfl_core::matrix::DenseMatrix;
use shfl_core::{Error, Result, SparsePattern};

/// Vector-wise pruner with vector length `V`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorWisePruner {
    v: usize,
}

impl VectorWisePruner {
    /// Creates a vector-wise pruner with vector length `v`.
    pub fn new(v: usize) -> Self {
        VectorWisePruner { v }
    }

    /// Vector length.
    pub fn vector_size(&self) -> usize {
        self.v
    }

    /// Number of columns each row group keeps at the given density over `cols`
    /// columns.
    pub fn columns_per_group(&self, cols: usize, density: f64) -> usize {
        ((cols as f64) * density).round() as usize
    }
}

impl Pruner for VectorWisePruner {
    fn pattern(&self) -> SparsePattern {
        SparsePattern::VectorWise { v: self.v }
    }

    fn prune(&self, scores: &DenseMatrix, density: f64) -> Result<BinaryMask> {
        let density = validate_density(density)?;
        let (rows, cols) = scores.shape();
        if self.v == 0 || rows % self.v != 0 {
            return Err(Error::InvalidGroupSize {
                group: self.v,
                dimension: rows,
            });
        }
        let group_scores = crate::importance::vector_scores(scores, self.v);
        let keep_cols = self.columns_per_group(cols, density);
        let mut mask = BinaryMask::all_pruned(rows, cols);
        for g in 0..rows / self.v {
            let kept = crate::importance::top_k_indices(group_scores.row(g), keep_cols);
            for c in kept {
                for r in 0..self.v {
                    mask.set(g * self.v + r, c, true);
                }
            }
        }
        Ok(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shfl_core::pattern::is_vector_wise;

    #[test]
    fn produces_vector_wise_masks_at_the_target_density() {
        let mut rng = StdRng::seed_from_u64(3);
        let scores = DenseMatrix::random(&mut rng, 64, 128).abs();
        for density in [0.125, 0.25, 0.5] {
            let mask = VectorWisePruner::new(16).prune(&scores, density).unwrap();
            assert!(is_vector_wise(&mask, 16));
            assert!((mask.density() - density).abs() < 0.01);
        }
    }

    #[test]
    fn keeps_the_best_columns_per_group() {
        // Column 3 dominates group 0; column 0 dominates group 1.
        let scores = DenseMatrix::from_fn(4, 4, |r, c| {
            if (r < 2 && c == 3) || (r >= 2 && c == 0) {
                5.0
            } else {
                0.1
            }
        });
        let mask = VectorWisePruner::new(2).prune(&scores, 0.25).unwrap();
        assert!(mask.is_kept(0, 3) && mask.is_kept(1, 3));
        assert!(mask.is_kept(2, 0) && mask.is_kept(3, 0));
        assert!(!mask.is_kept(0, 0));
    }

    #[test]
    fn rejects_bad_geometry_and_density() {
        let scores = DenseMatrix::zeros(30, 8);
        assert!(VectorWisePruner::new(16).prune(&scores, 0.5).is_err());
        let scores = DenseMatrix::zeros(32, 8);
        assert!(VectorWisePruner::new(0).prune(&scores, 0.5).is_err());
        assert!(VectorWisePruner::new(16).prune(&scores, 2.0).is_err());
    }

    #[test]
    fn columns_per_group_rounds() {
        let p = VectorWisePruner::new(8);
        assert_eq!(p.columns_per_group(100, 0.25), 25);
        assert_eq!(p.columns_per_group(10, 0.24), 2);
        assert_eq!(p.vector_size(), 8);
    }
}
