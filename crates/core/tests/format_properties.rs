//! Property-based tests of the sparse formats and pattern validators.
//!
//! Invariants exercised:
//! * every format round-trips losslessly through `to_dense`,
//! * pattern validators accept the masks produced by matrices that were constructed to
//!   satisfy them,
//! * metadata accounting is consistent with the stored structure,
//! * the Shfl-BW grouping permutation, when it exists, really produces a vector-wise
//!   matrix.

use proptest::prelude::*;
use shfl_core::formats::{
    BalancedMatrix, BlockSparseMatrix, CsrMatrix, ShflBwMatrix, VectorWiseMatrix,
};
use shfl_core::mask::BinaryMask;
use shfl_core::matrix::DenseMatrix;
use shfl_core::pattern::{is_balanced, is_block_wise, is_shfl_bw, is_vector_wise};

/// Strategy producing an arbitrary sparse dense matrix (values in [-1, 1], density in
/// [0, 0.5]) with dimensions that are multiples of 4.
fn sparse_matrix() -> impl Strategy<Value = DenseMatrix> {
    (1usize..6, 1usize..6, 0.0f64..0.5, any::<u64>()).prop_map(|(br, bc, density, seed)| {
        let rows = br * 4;
        let cols = bc * 4;
        let mut state = seed;
        let mut next = move || {
            // xorshift* keeps the strategy deterministic per seed without rand.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        DenseMatrix::from_fn(rows, cols, |_, _| {
            let r = next();
            let keep = (r % 1000) as f64 / 1000.0 < density;
            if keep {
                ((r % 2001) as f32 - 1000.0) / 1000.0
            } else {
                0.0
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_roundtrip_is_lossless(dense in sparse_matrix()) {
        let csr = CsrMatrix::from_dense(&dense);
        prop_assert_eq!(csr.to_dense(), dense.clone());
        prop_assert_eq!(csr.nnz(), dense.nnz());
    }

    #[test]
    fn vector_wise_roundtrip_is_lossless(dense in sparse_matrix()) {
        let vw = VectorWiseMatrix::from_dense(&dense, 4).unwrap();
        prop_assert_eq!(vw.to_dense(), dense.clone());
        // Vector-wise storage never stores less than the true non-zero count.
        prop_assert!(vw.stored_values() >= dense.nnz());
    }

    #[test]
    fn block_roundtrip_is_lossless(dense in sparse_matrix()) {
        let bsr = BlockSparseMatrix::from_dense(&dense, 4).unwrap();
        prop_assert_eq!(bsr.to_dense(), dense.clone());
        prop_assert_eq!(bsr.stored_values(), bsr.stored_blocks() * 16);
    }

    #[test]
    fn shfl_bw_with_identity_permutation_roundtrips(dense in sparse_matrix()) {
        let perm: Vec<usize> = (0..dense.rows()).collect();
        let shfl = ShflBwMatrix::from_dense_with_permutation(&dense, &perm, 4).unwrap();
        prop_assert_eq!(shfl.to_dense(), dense);
    }

    #[test]
    fn shfl_bw_with_reversed_permutation_roundtrips(dense in sparse_matrix()) {
        let perm: Vec<usize> = (0..dense.rows()).rev().collect();
        let shfl = ShflBwMatrix::from_dense_with_permutation(&dense, &perm, 4).unwrap();
        prop_assert_eq!(shfl.to_dense(), dense);
    }

    #[test]
    fn vector_wise_compressed_masks_validate(dense in sparse_matrix()) {
        // Re-densify a vector-wise compression: the non-zero structure of the result
        // is not necessarily vector-wise (explicit zeros stay zero), but the *kept
        // columns* structure is, which is what we verify through a mask built from
        // kept vectors.
        let vw = VectorWiseMatrix::from_dense(&dense, 4).unwrap();
        let mut mask = BinaryMask::all_pruned(dense.rows(), dense.cols());
        for g in 0..vw.num_groups() {
            for c in vw.group_cols(g) {
                for r in 0..4 {
                    mask.set(g * 4 + r, *c as usize, true);
                }
            }
        }
        prop_assert!(is_vector_wise(&mask, 4));
        prop_assert!(is_shfl_bw(&mask, 4));
    }

    #[test]
    fn block_compressed_masks_validate(dense in sparse_matrix()) {
        let bsr = BlockSparseMatrix::from_dense(&dense, 4).unwrap();
        let mut mask = BinaryMask::all_pruned(dense.rows(), dense.cols());
        for br in 0..bsr.block_rows() {
            for bc in bsr.blocks_in_row(br) {
                for r in 0..4 {
                    for c in 0..4 {
                        mask.set(br * 4 + r, *bc as usize * 4 + c, true);
                    }
                }
            }
        }
        prop_assert!(is_block_wise(&mask, 4));
        // Block-wise structure is also vector-wise and Shfl-BW by construction.
        prop_assert!(is_vector_wise(&mask, 4));
        prop_assert!(is_shfl_bw(&mask, 4));
    }

    #[test]
    fn balanced_prune_top_m_roundtrips(dense in sparse_matrix()) {
        // Keep the two largest magnitudes of every group of four, then compress.
        let (rows, cols) = dense.shape();
        let mut pruned = dense.clone();
        for r in 0..rows {
            for g in 0..cols / 4 {
                let mut entries: Vec<(usize, f32)> = (0..4)
                    .map(|i| (g * 4 + i, dense.get(r, g * 4 + i)))
                    .collect();
                entries.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
                for (c, _) in entries.iter().skip(2) {
                    pruned.set(r, *c, 0.0);
                }
            }
        }
        let bal = BalancedMatrix::from_dense(&pruned, 2, 4).unwrap();
        prop_assert_eq!(bal.to_dense(), pruned.clone());
        prop_assert!(is_balanced(&BinaryMask::from_nonzeros(&pruned), 2, 4));
    }

    #[test]
    fn metadata_bytes_are_positive_and_ordered(dense in sparse_matrix()) {
        let csr = CsrMatrix::from_dense(&dense);
        let vw = VectorWiseMatrix::from_dense(&dense, 4).unwrap();
        // Vector-wise metadata is per-vector rather than per-element, so for matrices
        // with at least a few non-zeros it is never larger than CSR metadata plus the
        // group pointers.
        prop_assert!(vw.col_idx().len() <= csr.col_idx().len());
    }

    #[test]
    fn density_is_consistent_across_formats(dense in sparse_matrix()) {
        let csr = CsrMatrix::from_dense(&dense);
        prop_assert!((csr.density() - dense.density()).abs() < 1e-12);
        let vw = VectorWiseMatrix::from_dense(&dense, 4).unwrap();
        prop_assert!(vw.density() + 1e-12 >= dense.density());
    }
}
