//! Sparsity pattern definitions and structural validation.
//!
//! The paper compares five families of sparsity patterns (§2.2, §3.1, Figure 3):
//!
//! * **Unstructured** — no structural constraint at all,
//! * **Block-wise (BW)** — non-zeros form whole `V×V` blocks,
//! * **Vector-wise (VW)** — non-zeros form whole `V×1` column vectors inside groups of
//!   `V` consecutive rows,
//! * **Balanced n:m** — at most `m` non-zeros inside every group of `n` consecutive
//!   elements of a row (the A100's 2-in-4 pattern),
//! * **Shfl-BW** — the paper's proposal: a vector-wise matrix composed with a row
//!   permutation, i.e. rows can be *grouped arbitrarily* as long as every group of `V`
//!   rows shares one column pattern.
//!
//! This module provides the [`SparsePattern`] enum used across the workspace and
//! validators that check whether a [`BinaryMask`] satisfies each pattern.

use crate::mask::BinaryMask;
use std::collections::HashMap;
use std::fmt;

/// The sparsity pattern families the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SparsePattern {
    /// No structural constraint.
    Unstructured,
    /// Whole `V×V` blocks are kept or pruned together (rows and columns are both
    /// partitioned into groups of `V` aligned to multiples of `V`).
    BlockWise {
        /// Block edge length `V`.
        v: usize,
    },
    /// Whole `V×1` vertical vectors (inside groups of `V` consecutive rows) are kept
    /// or pruned together.
    VectorWise {
        /// Vector length `V`.
        v: usize,
    },
    /// At most `m` non-zeros in every aligned group of `n` consecutive elements of a
    /// row. The A100 accelerates `m = 2`, `n = 4`.
    Balanced {
        /// Non-zeros kept per group.
        m: usize,
        /// Group length.
        n: usize,
    },
    /// The paper's Shuffled Block-wise pattern: there exists a row permutation under
    /// which the mask is vector-wise with vector length `V`.
    ShflBw {
        /// Vector length `V` (the size of each shuffled row group).
        v: usize,
    },
}

impl SparsePattern {
    /// A short identifier matching the labels the paper uses in its figures
    /// (`"unstructured"`, `"BW,V=32"`, `"VW,V=64"`, `"2in4"`, `"Shfl-BW,V=32"`).
    pub fn label(&self) -> String {
        match self {
            SparsePattern::Unstructured => "unstructured".to_string(),
            SparsePattern::BlockWise { v } => format!("BW,V={v}"),
            SparsePattern::VectorWise { v } => format!("VW,V={v}"),
            SparsePattern::Balanced { m, n } => format!("{m}in{n}"),
            SparsePattern::ShflBw { v } => format!("Shfl-BW,V={v}"),
        }
    }

    /// The granularity parameter `V` for the patterns that have one.
    pub fn vector_size(&self) -> Option<usize> {
        match self {
            SparsePattern::BlockWise { v }
            | SparsePattern::VectorWise { v }
            | SparsePattern::ShflBw { v } => Some(*v),
            _ => None,
        }
    }

    /// Whether kernels for this pattern can use tensor cores with dense tiles — true
    /// for the patterns that can be tiled into dense sub-matrices (§3.2.2).
    pub fn tiles_densely(&self) -> bool {
        matches!(
            self,
            SparsePattern::BlockWise { .. }
                | SparsePattern::VectorWise { .. }
                | SparsePattern::ShflBw { .. }
        )
    }

    /// Checks whether `mask` satisfies this pattern's structural constraint.
    pub fn validates(&self, mask: &BinaryMask) -> bool {
        match self {
            SparsePattern::Unstructured => true,
            SparsePattern::BlockWise { v } => is_block_wise(mask, *v),
            SparsePattern::VectorWise { v } => is_vector_wise(mask, *v),
            SparsePattern::Balanced { m, n } => is_balanced(mask, *m, *n),
            SparsePattern::ShflBw { v } => is_shfl_bw(mask, *v),
        }
    }
}

impl fmt::Display for SparsePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Whether all kept entries of `mask` form whole `v×v` blocks aligned to multiples of
/// `v`. Rows and columns that are not multiples of `v` are treated as padded with
/// pruned entries (a partial block must then be entirely kept in its valid region or
/// entirely pruned).
pub fn is_block_wise(mask: &BinaryMask, v: usize) -> bool {
    if v == 0 {
        return false;
    }
    let (rows, cols) = mask.shape();
    let block_rows = rows.div_ceil(v);
    let block_cols = cols.div_ceil(v);
    for br in 0..block_rows {
        for bc in 0..block_cols {
            let mut kept = 0usize;
            let mut total = 0usize;
            for r in br * v..((br + 1) * v).min(rows) {
                for c in bc * v..((bc + 1) * v).min(cols) {
                    total += 1;
                    if mask.is_kept(r, c) {
                        kept += 1;
                    }
                }
            }
            if kept != 0 && kept != total {
                return false;
            }
        }
    }
    true
}

/// Whether all kept entries of `mask` form whole `v×1` vectors: within every group of
/// `v` consecutive rows, each column is either kept in all rows of the group or pruned
/// in all of them.
pub fn is_vector_wise(mask: &BinaryMask, v: usize) -> bool {
    if v == 0 {
        return false;
    }
    let (rows, cols) = mask.shape();
    let groups = rows.div_ceil(v);
    for g in 0..groups {
        let start = g * v;
        let end = ((g + 1) * v).min(rows);
        for c in 0..cols {
            let first = mask.is_kept(start, c);
            for r in start + 1..end {
                if mask.is_kept(r, c) != first {
                    return false;
                }
            }
        }
    }
    true
}

/// Whether every aligned group of `n` consecutive elements in each row of `mask` keeps
/// at most `m` entries (the balanced / N:M pattern).
pub fn is_balanced(mask: &BinaryMask, m: usize, n: usize) -> bool {
    if n == 0 || m == 0 || m > n {
        return false;
    }
    let rows = mask.rows();
    for r in 0..rows {
        let row = mask.row(r);
        for chunk in row.chunks(n) {
            if chunk.iter().filter(|k| **k).count() > m {
                return false;
            }
        }
    }
    true
}

/// Whether there exists a row permutation under which `mask` becomes vector-wise with
/// vector length `v` — the definition of the Shfl-BW pattern.
///
/// Equivalently: when rows are grouped by their exact column pattern, every pattern's
/// multiplicity must be divisible by `v` — rows with identical patterns can always be
/// packed into full groups, and rows with different patterns can never share a group
/// (inside a group every column must be kept by all `v` rows or none of them).
/// All-pruned rows simply form all-pruned groups.
pub fn is_shfl_bw(mask: &BinaryMask, v: usize) -> bool {
    if v == 0 {
        return false;
    }
    let rows = mask.rows();
    if !rows.is_multiple_of(v) {
        return false;
    }
    let mut counts: HashMap<Vec<bool>, usize> = HashMap::new();
    for r in 0..rows {
        let row = mask.row(r).to_vec();
        if row.iter().any(|k| *k) {
            *counts.entry(row).or_insert(0) += 1;
        }
    }
    // Every non-empty pattern must fill whole groups; the remaining (all-pruned) rows
    // are then automatically a multiple of `v` as well because `rows % v == 0`.
    counts.values().all(|count| count % v == 0)
}

/// Finds a row permutation `perm` such that `mask.permuted_rows(&perm)` is vector-wise
/// with vector length `v`, if one exists. Rows with identical column patterns are
/// packed together; all-pruned rows fill the remaining slots.
///
/// Returns `None` when the mask does not satisfy the Shfl-BW pattern for this `v`.
pub fn shfl_bw_grouping_permutation(mask: &BinaryMask, v: usize) -> Option<Vec<usize>> {
    if !is_shfl_bw(mask, v) {
        return None;
    }
    let rows = mask.rows();
    let mut by_pattern: HashMap<Vec<bool>, Vec<usize>> = HashMap::new();
    let mut empty_rows: Vec<usize> = Vec::new();
    for r in 0..rows {
        let row = mask.row(r).to_vec();
        if row.iter().all(|k| !*k) {
            empty_rows.push(r);
        } else {
            by_pattern.entry(row).or_default().push(r);
        }
    }
    let mut perm = Vec::with_capacity(rows);
    // Deterministic order: sort patterns by their first row index.
    let mut groups: Vec<Vec<usize>> = by_pattern.into_values().collect();
    groups.sort_by_key(|g| g[0]);
    let mut partial: Vec<usize> = Vec::new();
    for group in groups {
        let mut rows_of_pattern = group;
        while rows_of_pattern.len() >= v {
            perm.extend(rows_of_pattern.drain(..v));
        }
        partial.extend(rows_of_pattern);
    }
    // Pad partially-filled patterns with empty rows (is_shfl_bw guarantees enough).
    partial.extend(empty_rows);
    perm.extend(partial);
    debug_assert_eq!(perm.len(), rows);
    Some(perm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from_rows(rows: &[&[u8]]) -> BinaryMask {
        let r = rows.len();
        let c = rows[0].len();
        BinaryMask::from_fn(r, c, |i, j| rows[i][j] != 0)
    }

    #[test]
    fn labels_match_paper_nomenclature() {
        assert_eq!(SparsePattern::Unstructured.label(), "unstructured");
        assert_eq!(SparsePattern::BlockWise { v: 32 }.label(), "BW,V=32");
        assert_eq!(SparsePattern::VectorWise { v: 64 }.label(), "VW,V=64");
        assert_eq!(SparsePattern::Balanced { m: 2, n: 4 }.label(), "2in4");
        assert_eq!(SparsePattern::ShflBw { v: 32 }.label(), "Shfl-BW,V=32");
    }

    #[test]
    fn dense_tiling_capability() {
        assert!(SparsePattern::BlockWise { v: 32 }.tiles_densely());
        assert!(SparsePattern::ShflBw { v: 64 }.tiles_densely());
        assert!(!SparsePattern::Unstructured.tiles_densely());
        assert!(!SparsePattern::Balanced { m: 2, n: 4 }.tiles_densely());
    }

    #[test]
    fn block_wise_detection() {
        let good = mask_from_rows(&[&[1, 1, 0, 0], &[1, 1, 0, 0], &[0, 0, 1, 1], &[0, 0, 1, 1]]);
        assert!(is_block_wise(&good, 2));
        let bad = mask_from_rows(&[&[1, 1, 0, 0], &[1, 0, 0, 0], &[0, 0, 1, 1], &[0, 0, 1, 1]]);
        assert!(!is_block_wise(&bad, 2));
        assert!(!is_block_wise(&good, 0));
    }

    #[test]
    fn vector_wise_detection() {
        let good = mask_from_rows(&[&[1, 0, 1, 0], &[1, 0, 1, 0], &[0, 1, 0, 0], &[0, 1, 0, 0]]);
        assert!(is_vector_wise(&good, 2));
        // Vector-wise is weaker than block-wise: columns need not be contiguous.
        assert!(!is_block_wise(&good, 2));
        let bad = mask_from_rows(&[&[1, 0, 1, 0], &[1, 1, 1, 0], &[0, 1, 0, 0], &[0, 1, 0, 0]]);
        assert!(!is_vector_wise(&bad, 2));
    }

    #[test]
    fn balanced_detection() {
        let good = mask_from_rows(&[&[1, 1, 0, 0, 0, 1, 1, 0], &[1, 0, 1, 0, 0, 0, 1, 1]]);
        assert!(is_balanced(&good, 2, 4));
        let bad = mask_from_rows(&[&[1, 1, 1, 0, 0, 1, 1, 0]]);
        assert!(!is_balanced(&bad, 2, 4));
        assert!(!is_balanced(&good, 0, 4));
        assert!(!is_balanced(&good, 5, 4));
    }

    #[test]
    fn shfl_bw_detection_with_scattered_rows() {
        // Rows 0 and 2 share a pattern, rows 1 and 3 share another: valid for V=2 even
        // though equal rows are not adjacent (this is exactly Figure 3(b)).
        let mask = mask_from_rows(&[&[1, 0, 1, 0], &[0, 1, 0, 1], &[1, 0, 1, 0], &[0, 1, 0, 1]]);
        assert!(is_shfl_bw(&mask, 2));
        assert!(!is_vector_wise(&mask, 2));
        // Three distinct patterns with multiplicity 1 cannot form groups of 2.
        let bad = mask_from_rows(&[&[1, 0, 0, 0], &[0, 1, 0, 0], &[0, 0, 1, 0], &[0, 0, 1, 0]]);
        assert!(!is_shfl_bw(&bad, 2));
    }

    #[test]
    fn shfl_bw_allows_all_pruned_rows_to_form_their_own_groups() {
        let mask = mask_from_rows(&[&[1, 0, 1, 0], &[0, 0, 0, 0], &[1, 0, 1, 0], &[0, 0, 0, 0]]);
        assert!(is_shfl_bw(&mask, 2));
    }

    #[test]
    fn shfl_bw_requires_divisible_row_count() {
        let mask = mask_from_rows(&[&[1, 0], &[1, 0], &[1, 0]]);
        assert!(!is_shfl_bw(&mask, 2));
    }

    #[test]
    fn grouping_permutation_produces_vector_wise_mask() {
        let mask = mask_from_rows(&[&[1, 0, 1, 0], &[0, 1, 0, 1], &[1, 0, 1, 0], &[0, 1, 0, 1]]);
        let perm = shfl_bw_grouping_permutation(&mask, 2).expect("pattern is Shfl-BW");
        let grouped = mask.permuted_rows(&perm).unwrap();
        assert!(is_vector_wise(&grouped, 2));
    }

    #[test]
    fn grouping_permutation_is_none_for_invalid_masks() {
        let mask = mask_from_rows(&[&[1, 0], &[0, 1], &[1, 1], &[0, 0]]);
        assert!(shfl_bw_grouping_permutation(&mask, 2).is_none());
    }

    #[test]
    fn validates_dispatches_to_the_right_checker() {
        let vw = mask_from_rows(&[&[1, 0], &[1, 0]]);
        assert!(SparsePattern::VectorWise { v: 2 }.validates(&vw));
        assert!(SparsePattern::Unstructured.validates(&vw));
        assert!(SparsePattern::ShflBw { v: 2 }.validates(&vw));
        assert!(!SparsePattern::BlockWise { v: 2 }.validates(&vw));
    }
}
