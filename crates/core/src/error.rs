//! Error type shared by the `shfl-core` public API.

use std::error::Error as StdError;
use std::fmt;

/// Errors returned by `shfl-core` constructors and conversions.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A matrix or mask was constructed with a data length that does not match its
    /// declared dimensions.
    DimensionMismatch {
        /// Expected number of elements (`rows * cols`).
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the incompatibility.
        context: String,
    },
    /// A vector/block size `V` does not divide the dimension it partitions.
    InvalidGroupSize {
        /// The group (vector or block) size that was requested.
        group: usize,
        /// The dimension the group size must divide.
        dimension: usize,
    },
    /// A permutation vector is not a valid permutation of `0..len`.
    InvalidPermutation {
        /// Expected length of the permutation.
        len: usize,
        /// Description of what is wrong with it.
        reason: String,
    },
    /// A sparsity/density parameter is outside `[0, 1]`.
    InvalidDensity {
        /// The offending value.
        value: f64,
    },
    /// A matrix does not satisfy the structural constraints of the sparse pattern it
    /// was being converted to.
    PatternViolation {
        /// Description of the violated constraint.
        context: String,
    },
    /// A balanced-sparsity parameter pair (`m` non-zeros in `n`) is invalid.
    InvalidBalancedShape {
        /// Non-zeros kept per group.
        m: usize,
        /// Group length.
        n: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match declared dimensions ({expected} elements expected)"
            ),
            Error::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            Error::InvalidGroupSize { group, dimension } => write!(
                f,
                "group size {group} does not divide dimension {dimension}"
            ),
            Error::InvalidPermutation { len, reason } => {
                write!(f, "invalid permutation of length {len}: {reason}")
            }
            Error::InvalidDensity { value } => {
                write!(f, "density {value} is outside the range [0, 1]")
            }
            Error::PatternViolation { context } => write!(f, "pattern violation: {context}"),
            Error::InvalidBalancedShape { m, n } => {
                write!(f, "balanced sparsity requires 0 < m <= n, got {m} in {n}")
            }
        }
    }
}

impl StdError for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::DimensionMismatch {
            expected: 6,
            actual: 5,
        };
        let s = format!("{e}");
        assert!(s.contains('6') && s.contains('5'));

        let e = Error::InvalidGroupSize {
            group: 32,
            dimension: 100,
        };
        assert!(format!("{e}").contains("32"));

        let e = Error::InvalidDensity { value: 1.5 };
        assert!(format!("{e}").contains("1.5"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}
