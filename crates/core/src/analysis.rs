//! Flexibility and computation-efficiency analysis of sparsity patterns (§3.2).
//!
//! The paper quantifies two properties of a sparsity pattern:
//!
//! * **Flexibility** — the number of candidate weight structures available at a given
//!   sparsity. More candidates means the pruning search can retain more important
//!   weights. We report natural logarithms because the counts overflow any integer
//!   type (the paper's own example is `> e^700`).
//! * **Computation efficiency** — the operation intensity (FLOP per byte of global
//!   memory traffic) a kernel for the pattern can reach, which determines whether the
//!   kernel can feed the tensor cores. §3.2.2 derives `Max_reuse = √α · Reuse_dense`
//!   for patterns whose tiles stay sparse (unstructured, balanced), and
//!   `Reuse_dense` for patterns whose tiles can be made dense (block-wise,
//!   vector-wise, Shfl-BW) provided `V ≥ T_opt`.

use crate::pattern::SparsePattern;

/// Natural logarithm of the Gamma function via the Lanczos approximation.
///
/// Accurate to ~1e-10 relative error for positive arguments, which is more than enough
/// for counting candidate structures.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural logarithm of `n!`.
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (no candidate exists).
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural logarithm of the number of ways to partition `m` rows into ordered groups
/// of size `v` — the paper's row-shuffling multiplier `M! / (V!)^(M/V)` (§3.2.1).
///
/// Returns 0.0 (a single candidate) when `v` does not divide `m` or either is zero,
/// since no shuffling freedom exists in that case.
pub fn ln_row_shuffle_candidates(m: u64, v: u64) -> f64 {
    if v == 0 || m == 0 || !m.is_multiple_of(v) {
        return 0.0;
    }
    ln_factorial(m) - (m / v) as f64 * ln_factorial(v)
}

/// Natural logarithm of the number of candidate weight structures for a pattern on an
/// `rows × cols` matrix at non-zero ratio `density` (§3.2.1).
///
/// * Unstructured: choose `α·M·K` positions out of `M·K`.
/// * Block-wise: choose kept blocks out of `(M/V)·(K/V)`.
/// * Vector-wise: per row group, choose kept columns out of `K`; `M/V` groups.
/// * Balanced N:M: per aligned group of `n`, choose `m` positions; structure count is
///   fixed by the hardware so the density argument is ignored beyond the `m/n` ratio.
/// * Shfl-BW: vector-wise count multiplied by the row-shuffling factor.
///
/// The density is clamped to `[0, 1]`; fractional element counts are rounded to the
/// nearest integer.
pub fn ln_candidate_structures(
    pattern: SparsePattern,
    rows: usize,
    cols: usize,
    density: f64,
) -> f64 {
    let density = density.clamp(0.0, 1.0);
    let rows_u = rows as u64;
    let cols_u = cols as u64;
    match pattern {
        SparsePattern::Unstructured => {
            let total = rows_u * cols_u;
            let kept = ((total as f64) * density).round() as u64;
            ln_binomial(total, kept)
        }
        SparsePattern::BlockWise { v } => {
            if v == 0 || !rows.is_multiple_of(v) || !cols.is_multiple_of(v) {
                return 0.0;
            }
            let blocks = (rows_u / v as u64) * (cols_u / v as u64);
            let kept = ((blocks as f64) * density).round() as u64;
            ln_binomial(blocks, kept)
        }
        SparsePattern::VectorWise { v } => {
            if v == 0 || !rows.is_multiple_of(v) {
                return 0.0;
            }
            let groups = rows_u / v as u64;
            let kept_cols = ((cols_u as f64) * density).round() as u64;
            groups as f64 * ln_binomial(cols_u, kept_cols)
        }
        SparsePattern::Balanced { m, n } => {
            if n == 0 || !cols.is_multiple_of(n) {
                return 0.0;
            }
            let groups = rows_u * (cols_u / n as u64);
            groups as f64 * ln_binomial(n as u64, m as u64)
        }
        SparsePattern::ShflBw { v } => {
            let vw = ln_candidate_structures(SparsePattern::VectorWise { v }, rows, cols, density);
            vw + ln_row_shuffle_candidates(rows_u, v as u64)
        }
    }
}

/// The register-file-optimal square output tile edge `T_opt = sqrt(regfile_elements)`
/// used by the reuse analysis (§3.2.2). `regfile_bytes` is the per-threadblock
/// register budget available for output accumulators; accumulators are fp32.
pub fn optimal_tile_edge(regfile_bytes: usize) -> f64 {
    ((regfile_bytes / std::mem::size_of::<f32>()) as f64).sqrt()
}

/// Maximum data reuse of a *dense* GEMM in FLOP per byte: `T_opt / 2` with fp16
/// operands (each loaded 2-byte value participates in `T_opt` MACs).
pub fn dense_max_reuse(regfile_bytes: usize) -> f64 {
    optimal_tile_edge(regfile_bytes) / 2.0
}

/// Maximum operation intensity (FLOP per byte of global traffic) achievable by an
/// SpMM kernel for `pattern` at non-zero ratio `density`, per the paper's §3.2.2
/// analysis:
///
/// * Unstructured / balanced: the tiled sparse matrix stays sparse, giving
///   `√α · Reuse_dense`.
/// * Block-wise / vector-wise / Shfl-BW with `V ≥ T_opt`: the tiles are dense, giving
///   `Reuse_dense`.
/// * Block-wise / vector-wise / Shfl-BW with `V < T_opt`: the output tile height is
///   capped at `V`, giving `S / (V + S/V) / 2` FLOP per byte where `S` is the register
///   budget in elements (equals `Reuse_dense` at `V = T_opt`).
pub fn max_reuse(pattern: SparsePattern, density: f64, regfile_bytes: usize) -> f64 {
    let density = density.clamp(0.0, 1.0);
    let dense_reuse = dense_max_reuse(regfile_bytes);
    match pattern {
        SparsePattern::Unstructured | SparsePattern::Balanced { .. } => {
            density.sqrt() * dense_reuse
        }
        SparsePattern::BlockWise { v }
        | SparsePattern::VectorWise { v }
        | SparsePattern::ShflBw { v } => {
            let t_opt = optimal_tile_edge(regfile_bytes);
            let v = v as f64;
            if v >= t_opt {
                dense_reuse
            } else if v <= 0.0 {
                0.0
            } else {
                let s = (regfile_bytes / std::mem::size_of::<f32>()) as f64;
                // TM = V, TN = S / V. MACs per loaded element = TM·TN / (TM + TN);
                // with fp16 operands (2 bytes) and 2 FLOPs per MAC the factors cancel,
                // so FLOP/byte equals MACs per element. At V = T_opt this reduces to
                // T_opt / 2 = Reuse_dense, keeping the expression continuous.
                let tn = s / v;
                (v * tn) / (v + tn)
            }
        }
    }
}

/// Summary of the §3.2 comparison for one pattern, produced by [`compare_patterns`].
#[derive(Debug, Clone, PartialEq)]
pub struct PatternAnalysis {
    /// The pattern analysed.
    pub pattern: SparsePattern,
    /// Natural log of the candidate-structure count at the requested density.
    pub ln_candidates: f64,
    /// Maximum achievable operation intensity in FLOP/byte.
    pub max_reuse_flop_per_byte: f64,
}

/// Runs the §3.2 flexibility / efficiency comparison for a set of patterns on an
/// `rows × cols` weight matrix at the given non-zero ratio.
pub fn compare_patterns(
    patterns: &[SparsePattern],
    rows: usize,
    cols: usize,
    density: f64,
    regfile_bytes: usize,
) -> Vec<PatternAnalysis> {
    patterns
        .iter()
        .map(|&pattern| PatternAnalysis {
            pattern,
            ln_candidates: ln_candidate_structures(pattern, rows, cols, density),
            max_reuse_flop_per_byte: max_reuse(pattern, density, regfile_bytes),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const REGFILE: usize = 256 * 1024;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(5) = 24, Γ(1) = 1, Γ(0.5) = √π.
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!(ln_gamma(1.0).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_factorial_and_binomial() {
        assert!((ln_factorial(10) - 3_628_800.0f64.ln()).abs() < 1e-6);
        assert!((ln_binomial(10, 3) - 120.0f64.ln()).abs() < 1e-6);
        assert_eq!(ln_binomial(3, 10), f64::NEG_INFINITY);
    }

    #[test]
    fn row_shuffle_candidates_match_paper_example() {
        // Paper §3.2.1: for M = 512 rows and V = 128 the multiplier already exceeds
        // e^700.
        let ln = ln_row_shuffle_candidates(512, 128);
        assert!(ln > 700.0, "ln multiplier = {ln}");
        // No freedom when V does not divide M or for the degenerate sizes.
        assert_eq!(ln_row_shuffle_candidates(10, 3), 0.0);
        assert_eq!(ln_row_shuffle_candidates(0, 4), 0.0);
    }

    #[test]
    fn flexibility_ordering_matches_figure_3() {
        // unstructured > Shfl-BW > vector-wise > block-wise at the same density.
        let (rows, cols, density) = (512, 512, 0.25);
        let un = ln_candidate_structures(SparsePattern::Unstructured, rows, cols, density);
        let shfl = ln_candidate_structures(SparsePattern::ShflBw { v: 32 }, rows, cols, density);
        let vw = ln_candidate_structures(SparsePattern::VectorWise { v: 32 }, rows, cols, density);
        let bw = ln_candidate_structures(SparsePattern::BlockWise { v: 32 }, rows, cols, density);
        assert!(un > shfl, "unstructured {un} vs shfl {shfl}");
        assert!(shfl > vw, "shfl {shfl} vs vw {vw}");
        assert!(vw > bw, "vw {vw} vs bw {bw}");
    }

    #[test]
    fn shfl_bw_flexibility_grows_with_row_shuffling_factor() {
        let vw = ln_candidate_structures(SparsePattern::VectorWise { v: 64 }, 1024, 1024, 0.2);
        let shfl = ln_candidate_structures(SparsePattern::ShflBw { v: 64 }, 1024, 1024, 0.2);
        let expected_gap = ln_row_shuffle_candidates(1024, 64);
        assert!((shfl - vw - expected_gap).abs() < 1e-6);
    }

    #[test]
    fn reuse_of_dense_tiling_patterns_reaches_dense_reuse() {
        let dense = dense_max_reuse(REGFILE);
        for v in [256usize, 512] {
            for pattern in [
                SparsePattern::BlockWise { v },
                SparsePattern::VectorWise { v },
                SparsePattern::ShflBw { v },
            ] {
                let r = max_reuse(pattern, 0.25, REGFILE);
                assert!(
                    (r - dense).abs() < 1e-9,
                    "{pattern} reuse {r} vs dense {dense}"
                );
            }
        }
    }

    #[test]
    fn reuse_of_unstructured_follows_sqrt_alpha() {
        let dense = dense_max_reuse(REGFILE);
        for alpha in [0.0625, 0.25, 0.5] {
            let r = max_reuse(SparsePattern::Unstructured, alpha, REGFILE);
            assert!((r - alpha.sqrt() * dense).abs() < 1e-9);
        }
        // Balanced sparsity has the same memory-bound behaviour.
        let r = max_reuse(SparsePattern::Balanced { m: 2, n: 4 }, 0.5, REGFILE);
        assert!((r - 0.5f64.sqrt() * dense).abs() < 1e-9);
    }

    #[test]
    fn small_v_limits_reuse() {
        let dense = dense_max_reuse(REGFILE);
        let r8 = max_reuse(SparsePattern::VectorWise { v: 8 }, 0.25, REGFILE);
        let r64 = max_reuse(SparsePattern::VectorWise { v: 64 }, 0.25, REGFILE);
        assert!(r8 < r64, "V=8 reuse {r8} should be below V=64 reuse {r64}");
        assert!(r64 <= dense + 1e-9);
        // This is the paper's explanation of why VectorSparse (V ≤ 8) underperforms.
        assert!(r8 < 0.1 * dense);
    }

    #[test]
    fn compare_patterns_reports_all_requested_patterns() {
        let patterns = [
            SparsePattern::Unstructured,
            SparsePattern::BlockWise { v: 32 },
            SparsePattern::ShflBw { v: 32 },
        ];
        let rows = compare_patterns(&patterns, 256, 256, 0.25, REGFILE);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].pattern, SparsePattern::ShflBw { v: 32 });
        // Shfl-BW matches block-wise reuse at the same V (the paper's claim) while
        // being strictly more flexible.
        assert!((rows[2].max_reuse_flop_per_byte - rows[1].max_reuse_flop_per_byte).abs() < 1e-9);
        assert!(rows[2].ln_candidates > rows[1].ln_candidates);
        assert!(rows[0].ln_candidates > rows[2].ln_candidates);
    }

    #[test]
    fn optimal_tile_edge_is_sqrt_of_elements() {
        assert!((optimal_tile_edge(4 * 256 * 256) - 256.0).abs() < 1e-9);
    }
}
