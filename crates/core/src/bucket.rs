//! N-bucket math for the serving layer.
//!
//! A prepared kernel plan is keyed to one activation width `n` — real traffic
//! arrives at arbitrary widths. [`BucketPolicy`] quantises widths onto a small
//! set of power-of-two buckets so a handful of plans serve every request:
//! a request narrower than its bucket is zero-padded
//! ([`crate::matrix::DenseMatrix::cols_padded`]) and the extra columns are
//! cropped afterwards; a request wider than the largest bucket is split into
//! consecutive column [`Segment`]s served independently. Padding and splitting
//! are both **bit-exact**: every output column of a GEMM/SpMM depends only on
//! its own activation column, so the real columns of a padded or split
//! execution equal the un-bucketed execution bit for bit (the serving property
//! tests assert this, including `n = 1` and `n` just past a bucket boundary).
//!
//! ## Example
//!
//! ```
//! use shfl_core::bucket::BucketPolicy;
//!
//! let policy = BucketPolicy::new(8, 64).unwrap();
//! assert_eq!(policy.bucket_for(1), 8);    // clamped up to the smallest bucket
//! assert_eq!(policy.bucket_for(48), 64);  // next power of two
//! assert_eq!(policy.buckets().collect::<Vec<_>>(), vec![8, 16, 32, 64]);
//! // 150 columns split into 64 + 64 + a padded 32-bucket tail of width 22.
//! let segs = policy.segments(150);
//! assert_eq!(segs.len(), 3);
//! assert_eq!((segs[2].start, segs[2].width, segs[2].bucket), (128, 22, 32));
//! ```

use crate::error::{Error, Result};

/// One column segment of a bucketed request: columns
/// `start .. start + width` of the original operand, served on a plan built
/// for `bucket` columns (`width <= bucket`; the difference is zero padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First column of the segment in the original operand.
    pub start: usize,
    /// Number of real columns the segment carries.
    pub width: usize,
    /// The power-of-two plan bucket the segment executes on.
    pub bucket: usize,
}

impl Segment {
    /// Zero columns added by padding this segment to its bucket.
    pub fn padding(&self) -> usize {
        self.bucket - self.width
    }

    /// First column past the segment in the original operand.
    pub fn end(&self) -> usize {
        self.start + self.width
    }
}

/// The power-of-two N-bucket policy of a serving engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketPolicy {
    /// Smallest bucket: requests narrower than this are padded up to it.
    min_bucket: usize,
    /// Largest bucket: requests wider than this are split into segments.
    max_bucket: usize,
}

impl BucketPolicy {
    /// Creates a policy with buckets `min, 2·min, …, max` (all powers of two).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if either bound is zero or not a power
    /// of two, or if `min > max`.
    pub fn new(min_bucket: usize, max_bucket: usize) -> Result<Self> {
        if min_bucket == 0
            || max_bucket == 0
            || !min_bucket.is_power_of_two()
            || !max_bucket.is_power_of_two()
            || min_bucket > max_bucket
        {
            return Err(Error::ShapeMismatch {
                context: format!(
                    "bucket policy bounds must be powers of two with min <= max, \
                     got min={min_bucket} max={max_bucket}"
                ),
            });
        }
        Ok(BucketPolicy {
            min_bucket,
            max_bucket,
        })
    }

    /// The default serving policy: buckets 8 … 256.
    pub fn serving_default() -> Self {
        BucketPolicy {
            min_bucket: 8,
            max_bucket: 256,
        }
    }

    /// Smallest bucket of the policy.
    pub fn min_bucket(&self) -> usize {
        self.min_bucket
    }

    /// Largest bucket of the policy.
    pub fn max_bucket(&self) -> usize {
        self.max_bucket
    }

    /// The buckets of the policy in ascending order.
    pub fn buckets(&self) -> impl Iterator<Item = usize> {
        let (min, max) = (self.min_bucket, self.max_bucket);
        std::iter::successors(Some(min), move |b| Some(b * 2)).take_while(move |b| *b <= max)
    }

    /// Number of distinct buckets (the natural plan-cache capacity per layer).
    pub fn num_buckets(&self) -> usize {
        (self.max_bucket / self.min_bucket).trailing_zeros() as usize + 1
    }

    /// The bucket serving a single segment of width `n` (`1 <= n <=
    /// max_bucket`): the smallest power of two `>= n`, clamped up to the
    /// smallest bucket.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or wider than the largest bucket (wider requests
    /// must be split via [`BucketPolicy::segments`]).
    pub fn bucket_for(&self, n: usize) -> usize {
        assert!(n > 0, "cannot bucket an empty operand");
        assert!(
            n <= self.max_bucket,
            "width {n} exceeds the largest bucket {}; split it into segments",
            self.max_bucket
        );
        n.next_power_of_two().max(self.min_bucket)
    }

    /// Splits a request of `n` columns into bucketed column segments:
    /// full-width `max_bucket` segments while the remainder exceeds the
    /// largest bucket, then one final segment on the bucket fitting the tail.
    /// `n = 0` yields no segments.
    pub fn segments(&self, n: usize) -> Vec<Segment> {
        let mut segments = Vec::with_capacity(n / self.max_bucket + 1);
        let mut start = 0;
        while n - start > self.max_bucket {
            segments.push(Segment {
                start,
                width: self.max_bucket,
                bucket: self.max_bucket,
            });
            start += self.max_bucket;
        }
        if n > start {
            let width = n - start;
            segments.push(Segment {
                start,
                width,
                bucket: self.bucket_for(width),
            });
        }
        segments
    }

    /// Total padded width `n` columns occupy across their segments (the
    /// wasted-work metric of the policy: `padded_width(n) - n` zero columns
    /// are multiplied per request).
    pub fn padded_width(&self, n: usize) -> usize {
        self.segments(n).iter().map(|s| s.bucket).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_bounds() {
        assert!(BucketPolicy::new(0, 8).is_err());
        assert!(BucketPolicy::new(8, 0).is_err());
        assert!(BucketPolicy::new(6, 64).is_err());
        assert!(BucketPolicy::new(8, 48).is_err());
        assert!(BucketPolicy::new(64, 8).is_err());
        assert!(BucketPolicy::new(8, 8).is_ok());
    }

    #[test]
    fn bucket_for_rounds_up_to_powers_of_two() {
        let p = BucketPolicy::new(8, 128).unwrap();
        assert_eq!(p.bucket_for(1), 8);
        assert_eq!(p.bucket_for(8), 8);
        assert_eq!(p.bucket_for(9), 16);
        assert_eq!(p.bucket_for(100), 128);
        assert_eq!(p.bucket_for(128), 128);
    }

    #[test]
    #[should_panic(expected = "exceeds the largest bucket")]
    fn bucket_for_rejects_oversized_widths() {
        BucketPolicy::new(8, 64).unwrap().bucket_for(65);
    }

    #[test]
    fn segments_cover_the_width_exactly_once() {
        let p = BucketPolicy::new(8, 64).unwrap();
        for n in [0, 1, 7, 8, 9, 63, 64, 65, 100, 128, 129, 500] {
            let segs = p.segments(n);
            let mut expected_start = 0;
            for s in &segs {
                assert_eq!(s.start, expected_start);
                assert!(s.width >= 1 && s.width <= s.bucket);
                assert!(s.bucket.is_power_of_two());
                assert!(s.bucket <= 64);
                expected_start += s.width;
            }
            assert_eq!(expected_start, n, "segments must tile n={n}");
            if n == 0 {
                assert!(segs.is_empty());
            }
        }
    }

    #[test]
    fn boundary_widths_pick_the_expected_buckets() {
        let p = BucketPolicy::new(8, 64).unwrap();
        // One past a bucket boundary doubles the bucket …
        assert_eq!(p.segments(17)[0].bucket, 32);
        // … and one past the largest bucket splits instead of doubling.
        let segs = p.segments(65);
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].width, segs[0].bucket), (64, 64));
        assert_eq!((segs[1].width, segs[1].bucket), (1, 8));
        assert_eq!(segs[1].padding(), 7);
    }

    #[test]
    fn buckets_and_padded_width_are_consistent() {
        let p = BucketPolicy::new(16, 64).unwrap();
        assert_eq!(p.buckets().collect::<Vec<_>>(), vec![16, 32, 64]);
        assert_eq!(p.num_buckets(), 3);
        assert_eq!(p.padded_width(1), 16);
        assert_eq!(p.padded_width(64), 64);
        assert_eq!(p.padded_width(65), 64 + 16);
        assert_eq!(p.padded_width(0), 0);
        assert_eq!(BucketPolicy::serving_default().num_buckets(), 6);
    }
}
