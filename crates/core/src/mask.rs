//! Binary masks describing which weights a pruning decision keeps.
//!
//! The pruning algorithms in `shfl-pruning` all produce a [`BinaryMask`]: `true`
//! entries are kept weights, `false` entries are pruned. The mask is the object the
//! paper's pattern definitions (§3.1) constrain, and the object the Shfl-BW search
//! algorithm (Figure 5) clusters when it groups rows with similar column patterns.

use crate::error::{Error, Result};
use crate::matrix::DenseMatrix;
use std::fmt;

/// A boolean keep/prune mask with the same shape as the weight matrix it applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryMask {
    rows: usize,
    cols: usize,
    data: Vec<bool>,
}

impl BinaryMask {
    /// Creates an all-`false` (everything pruned) mask.
    pub fn all_pruned(rows: usize, cols: usize) -> Self {
        BinaryMask {
            rows,
            cols,
            data: vec![false; rows * cols],
        }
    }

    /// Creates an all-`true` (everything kept) mask.
    pub fn all_kept(rows: usize, cols: usize) -> Self {
        BinaryMask {
            rows,
            cols,
            data: vec![true; rows * cols],
        }
    }

    /// Creates a mask from a row-major boolean vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<bool>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(BinaryMask { rows, cols, data })
    }

    /// Creates a mask by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        BinaryMask { rows, cols, data }
    }

    /// Creates the mask of non-zero entries of a dense matrix.
    pub fn from_nonzeros(matrix: &DenseMatrix) -> Self {
        BinaryMask {
            rows: matrix.rows(),
            cols: matrix.cols(),
            data: matrix.as_slice().iter().map(|v| *v != 0.0).collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether position `(row, col)` is kept.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn is_kept(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets whether position `(row, col)` is kept.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, kept: bool) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = kept;
    }

    /// Borrow of one row of the mask.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row(&self, row: usize) -> &[bool] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Number of kept entries.
    pub fn kept_count(&self) -> usize {
        self.data.iter().filter(|k| **k).count()
    }

    /// Fraction of entries kept (the paper's non-zero ratio `α`).
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.kept_count() as f64 / self.data.len() as f64
        }
    }

    /// Fraction of entries pruned (`1 - density`), the paper's "sparsity".
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Column indices kept in `row`, in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn kept_columns(&self, row: usize) -> Vec<usize> {
        self.row(row)
            .iter()
            .enumerate()
            .filter_map(|(c, k)| if *k { Some(c) } else { None })
            .collect()
    }

    /// Applies the mask to a matrix, zeroing pruned entries.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the shapes differ.
    pub fn apply(&self, matrix: &DenseMatrix) -> Result<DenseMatrix> {
        if self.shape() != matrix.shape() {
            return Err(Error::ShapeMismatch {
                context: format!(
                    "mask {:?} applied to matrix {:?}",
                    self.shape(),
                    matrix.shape()
                ),
            });
        }
        let mut out = matrix.clone();
        for (v, k) in out.as_mut_slice().iter_mut().zip(self.data.iter()) {
            if !*k {
                *v = 0.0;
            }
        }
        Ok(out)
    }

    /// Total importance score retained by this mask on a score matrix. This is the
    /// objective every pattern-search algorithm in the paper maximises.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the shapes differ.
    pub fn retained_score(&self, scores: &DenseMatrix) -> Result<f64> {
        if self.shape() != scores.shape() {
            return Err(Error::ShapeMismatch {
                context: format!(
                    "mask {:?} scored against matrix {:?}",
                    self.shape(),
                    scores.shape()
                ),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(scores.as_slice().iter())
            .filter(|(k, _)| **k)
            .map(|(_, v)| f64::from(*v))
            .sum())
    }

    /// Returns a copy with rows re-ordered so that output row `i` is input row
    /// `permutation[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPermutation`] if `permutation` is not a permutation of
    /// `0..rows`.
    pub fn permuted_rows(&self, permutation: &[usize]) -> Result<BinaryMask> {
        crate::matrix::validate_permutation(permutation, self.rows)?;
        let mut out = BinaryMask::all_pruned(self.rows, self.cols);
        for (dst, &src) in permutation.iter().enumerate() {
            for c in 0..self.cols {
                out.set(dst, c, self.is_kept(src, c));
            }
        }
        Ok(out)
    }

    /// Hamming distance between two rows of the mask (number of positions where the
    /// keep decision differs). Used by the K-Means row-grouping stage of the Shfl-BW
    /// search.
    ///
    /// # Panics
    ///
    /// Panics if either row index is out of bounds.
    pub fn row_hamming_distance(&self, row_a: usize, row_b: usize) -> usize {
        self.row(row_a)
            .iter()
            .zip(self.row(row_b).iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl fmt::Display for BinaryMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BinaryMask {}x{} ({} kept, {:.1}% dense)",
            self.rows,
            self.cols,
            self.kept_count(),
            self.density() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        let m = BinaryMask::from_vec(2, 2, vec![true, false, false, true]).unwrap();
        assert_eq!(m.kept_count(), 2);
        assert!((m.density() - 0.5).abs() < 1e-12);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
        assert!(m.is_kept(0, 0));
        assert!(!m.is_kept(0, 1));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(BinaryMask::from_vec(2, 2, vec![true; 3]).is_err());
    }

    #[test]
    fn all_kept_and_all_pruned() {
        assert_eq!(BinaryMask::all_kept(3, 3).kept_count(), 9);
        assert_eq!(BinaryMask::all_pruned(3, 3).kept_count(), 0);
    }

    #[test]
    fn from_nonzeros_matches_matrix() {
        let m = DenseMatrix::from_vec(2, 2, vec![0.0, 1.0, -2.0, 0.0]).unwrap();
        let mask = BinaryMask::from_nonzeros(&m);
        assert_eq!(mask.kept_count(), 2);
        assert!(mask.is_kept(0, 1));
        assert!(!mask.is_kept(1, 1));
    }

    #[test]
    fn apply_zeroes_pruned_entries() {
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mask = BinaryMask::from_vec(2, 2, vec![true, false, false, true]).unwrap();
        let out = mask.apply(&m).unwrap();
        assert_eq!(out.as_slice(), &[1.0, 0.0, 0.0, 4.0]);
        assert!(mask.apply(&DenseMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn retained_score_sums_kept_scores() {
        let scores = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mask = BinaryMask::from_vec(2, 2, vec![true, false, true, false]).unwrap();
        assert!((mask.retained_score(&scores).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn kept_columns_lists_indices() {
        let mask = BinaryMask::from_vec(1, 4, vec![false, true, true, false]).unwrap();
        assert_eq!(mask.kept_columns(0), vec![1, 2]);
    }

    #[test]
    fn permuted_rows_moves_patterns() {
        let mask = BinaryMask::from_fn(3, 2, |r, _| r == 1);
        let p = mask.permuted_rows(&[1, 2, 0]).unwrap();
        assert!(p.is_kept(0, 0));
        assert!(!p.is_kept(1, 0));
        assert!(!p.is_kept(2, 0));
        assert!(mask.permuted_rows(&[0, 0, 1]).is_err());
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let mask = BinaryMask::from_vec(
            2,
            4,
            vec![true, true, false, false, true, false, false, true],
        )
        .unwrap();
        assert_eq!(mask.row_hamming_distance(0, 1), 2);
        assert_eq!(mask.row_hamming_distance(0, 0), 0);
    }

    #[test]
    fn display_mentions_shape_and_density() {
        let mask = BinaryMask::all_kept(2, 2);
        let s = format!("{mask}");
        assert!(s.contains("2x2") && s.contains("100.0%"));
    }
}
