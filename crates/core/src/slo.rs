//! Priority / SLO classes for serving traffic.
//!
//! A serving front-end that holds an admission window and coalesces requests
//! across arrivals (Orca-style continuous batching) trades individual latency
//! for aggregate throughput — which is only acceptable when the scheduler
//! knows *which* requests may wait. [`SloClass`] is that contract: every
//! submission declares whether it is deadline-bound interactive traffic,
//! ordinary traffic, or bulk throughput work that yields to everything else.
//! The class rides with the submission (not with the tensor operation — the
//! same layer serves all three classes), so the request types of the serving
//! crate stay unchanged and the class lives here in `shfl-core` where both
//! the serving stack and the benchmarks can name it without a dependency
//! cycle.

use std::fmt;

/// The service-level class of one serving submission.
///
/// Ordering across classes is by urgency: `Deadline` ahead of `Standard`
/// ahead of `Bulk` (see [`SloClass::kind`] and [`SloKind::rank`]). Within the
/// deadline class, schedulers break ties by the tightest deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SloClass {
    /// Latency-sensitive traffic with a target service deadline, in
    /// microseconds **relative to submission time**. A deadline-aware queue
    /// policy schedules these ahead of all other classes, tightest deadline
    /// first. The deadline is a scheduling hint, not an admission filter:
    /// a missed deadline is recorded, never dropped.
    Deadline {
        /// Target end-to-end latency budget from submission, in µs.
        deadline_us: u64,
    },
    /// The default class: served in queue order among its own kind, after
    /// deadline traffic and before bulk traffic.
    #[default]
    Standard,
    /// Throughput traffic (batch scoring, background re-ranking): yields to
    /// every other class and absorbs the queueing delay the admission window
    /// introduces.
    Bulk,
}

impl SloClass {
    /// The payload-free kind of this class (the percentile-bucketing and
    /// ordering key).
    pub fn kind(&self) -> SloKind {
        match self {
            SloClass::Deadline { .. } => SloKind::Deadline,
            SloClass::Standard => SloKind::Standard,
            SloClass::Bulk => SloKind::Bulk,
        }
    }

    /// The deadline budget in µs, if this is deadline-class traffic.
    pub fn deadline_us(&self) -> Option<u64> {
        match self {
            SloClass::Deadline { deadline_us } => Some(*deadline_us),
            _ => None,
        }
    }
}

impl fmt::Display for SloClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SloClass::Deadline { deadline_us } => write!(f, "deadline({deadline_us}us)"),
            SloClass::Standard => f.write_str("standard"),
            SloClass::Bulk => f.write_str("bulk"),
        }
    }
}

/// The payload-free discriminant of [`SloClass`] — what latency percentiles
/// are bucketed by and what class-rank scheduling compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SloKind {
    /// Deadline-bound interactive traffic (most urgent).
    Deadline,
    /// Default traffic.
    Standard,
    /// Bulk throughput traffic (least urgent).
    Bulk,
}

impl SloKind {
    /// Number of SLO kinds — the length of rank-indexed per-class tables
    /// (queue bounds, counters); [`SloKind::rank`] is always a valid index
    /// into an array of this length.
    pub const COUNT: usize = 3;

    /// Scheduling rank: lower ranks dispatch first (`Deadline` = 0,
    /// `Standard` = 1, `Bulk` = 2).
    pub fn rank(&self) -> u8 {
        match self {
            SloKind::Deadline => 0,
            SloKind::Standard => 1,
            SloKind::Bulk => 2,
        }
    }

    /// Every kind, in rank order.
    pub fn all() -> [SloKind; 3] {
        [SloKind::Deadline, SloKind::Standard, SloKind::Bulk]
    }

    /// Short label for tables and JSON keys.
    pub fn label(&self) -> &'static str {
        match self {
            SloKind::Deadline => "deadline",
            SloKind::Standard => "standard",
            SloKind::Bulk => "bulk",
        }
    }
}

impl fmt::Display for SloKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_rank_by_urgency() {
        assert!(SloKind::Deadline.rank() < SloKind::Standard.rank());
        assert!(SloKind::Standard.rank() < SloKind::Bulk.rank());
        assert_eq!(SloKind::all().map(|k| k.rank()), [0, 1, 2]);
        assert_eq!(SloKind::all().len(), SloKind::COUNT);
        assert!(SloKind::all()
            .iter()
            .all(|k| (k.rank() as usize) < SloKind::COUNT));
    }

    #[test]
    fn class_exposes_kind_and_deadline() {
        let d = SloClass::Deadline { deadline_us: 1500 };
        assert_eq!(d.kind(), SloKind::Deadline);
        assert_eq!(d.deadline_us(), Some(1500));
        assert_eq!(SloClass::Standard.deadline_us(), None);
        assert_eq!(SloClass::default(), SloClass::Standard);
        assert_eq!(SloClass::Bulk.kind(), SloKind::Bulk);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            format!("{}", SloClass::Deadline { deadline_us: 200 }),
            "deadline(200us)"
        );
        assert_eq!(format!("{}", SloKind::Bulk), "bulk");
        assert_eq!(SloKind::Standard.label(), "standard");
    }
}
