//! Priority / SLO classes for serving traffic.
//!
//! A serving front-end that holds an admission window and coalesces requests
//! across arrivals (Orca-style continuous batching) trades individual latency
//! for aggregate throughput — which is only acceptable when the scheduler
//! knows *which* requests may wait. [`SloClass`] is that contract: every
//! submission declares whether it is deadline-bound interactive traffic,
//! ordinary traffic, or bulk throughput work that yields to everything else.
//! The class rides with the submission (not with the tensor operation — the
//! same layer serves all three classes), so the request types of the serving
//! crate stay unchanged and the class lives here in `shfl-core` where both
//! the serving stack and the benchmarks can name it without a dependency
//! cycle.

use std::fmt;

/// The service-level class of one serving submission.
///
/// Ordering across classes is by urgency: `Deadline` ahead of `Standard`
/// ahead of `Bulk` (see [`SloClass::kind`] and [`SloKind::rank`]). Within the
/// deadline class, schedulers break ties by the tightest deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SloClass {
    /// Latency-sensitive traffic with a target service deadline, in
    /// microseconds **relative to submission time**. A deadline-aware queue
    /// policy schedules these ahead of all other classes, tightest deadline
    /// first. The deadline is a scheduling hint, not an admission filter:
    /// a missed deadline is recorded, never dropped.
    Deadline {
        /// Target end-to-end latency budget from submission, in µs.
        deadline_us: u64,
    },
    /// The default class: served in queue order among its own kind, after
    /// deadline traffic and before bulk traffic.
    #[default]
    Standard,
    /// Throughput traffic (batch scoring, background re-ranking): yields to
    /// every other class and absorbs the queueing delay the admission window
    /// introduces.
    Bulk,
}

impl SloClass {
    /// The payload-free kind of this class (the percentile-bucketing and
    /// ordering key).
    pub fn kind(&self) -> SloKind {
        match self {
            SloClass::Deadline { .. } => SloKind::Deadline,
            SloClass::Standard => SloKind::Standard,
            SloClass::Bulk => SloKind::Bulk,
        }
    }

    /// The deadline budget in µs, if this is deadline-class traffic.
    pub fn deadline_us(&self) -> Option<u64> {
        match self {
            SloClass::Deadline { deadline_us } => Some(*deadline_us),
            _ => None,
        }
    }

    /// Splits a whole-sequence deadline budget evenly across `steps` decode
    /// tokens: `Deadline { d }` becomes `Deadline { d / steps }` (floored,
    /// clamped to ≥ 1 µs so the budget never degenerates to zero). The other
    /// classes carry no deadline and pass through unchanged. This is how an
    /// end-to-end generation SLO is expressed as the per-token deadline a
    /// decode session is scheduled against.
    pub fn per_token(self, steps: usize) -> SloClass {
        match self {
            SloClass::Deadline { deadline_us } => SloClass::Deadline {
                deadline_us: (deadline_us / steps.max(1) as u64).max(1),
            },
            other => other,
        }
    }

    /// Absolute due time of one decode token whose step began at `start_us`
    /// (µs on the caller's clock): `start + budget` for deadline-class
    /// sessions, `None` for the classes that carry no deadline.
    pub fn token_due_us(&self, start_us: u64) -> Option<u64> {
        self.deadline_us()
            .map(|budget| start_us.saturating_add(budget))
    }

    /// Verdict of one token against the per-token budget: whether a token
    /// that took `latency_us` met this class's deadline. `None` for classes
    /// without one — "no deadline" and "met" must stay distinguishable in
    /// the per-token records.
    pub fn token_met(&self, latency_us: u64) -> Option<bool> {
        self.deadline_us().map(|budget| latency_us <= budget)
    }
}

impl fmt::Display for SloClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SloClass::Deadline { deadline_us } => write!(f, "deadline({deadline_us}us)"),
            SloClass::Standard => f.write_str("standard"),
            SloClass::Bulk => f.write_str("bulk"),
        }
    }
}

/// The payload-free discriminant of [`SloClass`] — what latency percentiles
/// are bucketed by and what class-rank scheduling compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SloKind {
    /// Deadline-bound interactive traffic (most urgent).
    Deadline,
    /// Default traffic.
    Standard,
    /// Bulk throughput traffic (least urgent).
    Bulk,
}

impl SloKind {
    /// Number of SLO kinds — the length of rank-indexed per-class tables
    /// (queue bounds, counters); [`SloKind::rank`] is always a valid index
    /// into an array of this length.
    pub const COUNT: usize = 3;

    /// Scheduling rank: lower ranks dispatch first (`Deadline` = 0,
    /// `Standard` = 1, `Bulk` = 2).
    pub fn rank(&self) -> u8 {
        match self {
            SloKind::Deadline => 0,
            SloKind::Standard => 1,
            SloKind::Bulk => 2,
        }
    }

    /// Every kind, in rank order.
    pub fn all() -> [SloKind; 3] {
        [SloKind::Deadline, SloKind::Standard, SloKind::Bulk]
    }

    /// Short label for tables and JSON keys.
    pub fn label(&self) -> &'static str {
        match self {
            SloKind::Deadline => "deadline",
            SloKind::Standard => "standard",
            SloKind::Bulk => "bulk",
        }
    }
}

impl fmt::Display for SloKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_rank_by_urgency() {
        assert!(SloKind::Deadline.rank() < SloKind::Standard.rank());
        assert!(SloKind::Standard.rank() < SloKind::Bulk.rank());
        assert_eq!(SloKind::all().map(|k| k.rank()), [0, 1, 2]);
        assert_eq!(SloKind::all().len(), SloKind::COUNT);
        assert!(SloKind::all()
            .iter()
            .all(|k| (k.rank() as usize) < SloKind::COUNT));
    }

    #[test]
    fn class_exposes_kind_and_deadline() {
        let d = SloClass::Deadline { deadline_us: 1500 };
        assert_eq!(d.kind(), SloKind::Deadline);
        assert_eq!(d.deadline_us(), Some(1500));
        assert_eq!(SloClass::Standard.deadline_us(), None);
        assert_eq!(SloClass::default(), SloClass::Standard);
        assert_eq!(SloClass::Bulk.kind(), SloKind::Bulk);
    }

    #[test]
    fn per_token_deadline_helpers_split_and_judge_budgets() {
        let class = SloClass::Deadline { deadline_us: 6_400 };
        let per_token = class.per_token(64);
        assert_eq!(per_token.deadline_us(), Some(100));
        // The budget never degenerates to zero, and zero steps is treated
        // as one.
        assert_eq!(
            SloClass::Deadline { deadline_us: 3 }.per_token(10),
            SloClass::Deadline { deadline_us: 1 }
        );
        assert_eq!(class.per_token(0), class);
        assert_eq!(SloClass::Bulk.per_token(64), SloClass::Bulk);
        assert_eq!(per_token.token_due_us(1_000), Some(1_100));
        assert_eq!(SloClass::Standard.token_due_us(1_000), None);
        assert_eq!(per_token.token_met(99), Some(true));
        assert_eq!(per_token.token_met(101), Some(false));
        assert_eq!(SloClass::Bulk.token_met(10), None);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            format!("{}", SloClass::Deadline { deadline_us: 200 }),
            "deadline(200us)"
        );
        assert_eq!(format!("{}", SloKind::Bulk), "bulk");
        assert_eq!(SloKind::Standard.label(), "standard");
    }
}
