//! Fork-join helpers shared by the blocked kernels.
//!
//! The functional kernels partition their output into disjoint row-tiles and
//! process the tiles independently, so the natural parallel primitive is "run
//! `f` over consecutive disjoint chunks of a mutable slice". With the
//! `parallel` feature enabled (the default), [`par_chunks_mut`] fans the chunks
//! out over `rayon`-scoped worker threads, one contiguous run of chunks per
//! worker; without it the same code degrades to a serial loop.
//!
//! Every call site produces bit-identical results either way: each chunk is
//! written by exactly one task and the per-chunk computation order does not
//! depend on the thread schedule.

/// Minimum work units per worker before fanning out, where one work unit is
/// roughly one MAC or one copied element. Below this the thread spawn overhead
/// dominates (the shim `rayon` spawns OS threads), so small problems — most
/// unit-test inputs — stay on the calling thread.
#[cfg(feature = "parallel")]
const MIN_WORK_PER_WORKER: usize = 64 * 1024;

/// Runs `f(chunk_index, chunk)` for every consecutive `chunk_len`-sized chunk
/// of `data` (the final chunk may be shorter), in parallel when the `parallel`
/// feature is on and the slice is large enough to amortise the fan-out.
///
/// Sizing assumes ~1 work unit per element; compute kernels that do `k` MACs
/// per output element should use [`par_chunks_mut_weighted`] so deep-reduction
/// shapes with small outputs still fan out.
///
/// `chunk_len == 0` or an empty slice is a no-op.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut_weighted(data, chunk_len, 1, f);
}

/// [`par_chunks_mut`] with an explicit per-element work weight: the fan-out
/// decision uses `data.len() × work_per_element` work units, so a skinny
/// output with a deep reduction (many MACs per element) still parallelises
/// while a same-sized pure copy stays serial.
pub fn par_chunks_mut_weighted<T, F>(
    data: &mut [T],
    chunk_len: usize,
    work_per_element: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() || chunk_len == 0 {
        return;
    }
    let num_chunks = data.len().div_ceil(chunk_len);
    let work = data.len().saturating_mul(work_per_element.max(1));
    let workers = max_workers(work, num_chunks);
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    fan_out(data, chunk_len, num_chunks, workers, &f);
}

/// Number of workers worth using for `work` total work units split into
/// `num_chunks` chunks (always 1 when the `parallel` feature is off).
fn max_workers(work: usize, num_chunks: usize) -> usize {
    #[cfg(feature = "parallel")]
    {
        let by_work = (work / MIN_WORK_PER_WORKER).max(1);
        rayon::current_num_threads().min(num_chunks).min(by_work)
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = (work, num_chunks);
        1
    }
}

#[cfg(feature = "parallel")]
fn fan_out<T, F>(data: &mut [T], chunk_len: usize, num_chunks: usize, workers: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunks_per_worker = num_chunks.div_ceil(workers);
    let run_len = chunks_per_worker * chunk_len;
    rayon::scope(|s| {
        for (w, run) in data.chunks_mut(run_len).enumerate() {
            s.spawn(move |_| {
                for (i, chunk) in run.chunks_mut(chunk_len).enumerate() {
                    f(w * chunks_per_worker + i, chunk);
                }
            });
        }
    });
}

#[cfg(not(feature = "parallel"))]
fn fan_out<T, F>(_data: &mut [T], _chunk_len: usize, _num_chunks: usize, _workers: usize, _f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    unreachable!("max_workers is 1 without the parallel feature")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_chunk_exactly_once() {
        let mut data = vec![0u32; 1000];
        par_chunks_mut(&mut data, 7, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        for (pos, v) in data.iter().enumerate() {
            assert_eq!(*v, (pos / 7) as u32 + 1);
        }
    }

    #[test]
    fn large_slices_match_serial_reference() {
        // Big enough to cross MIN_ELEMENTS_PER_WORKER and actually fan out.
        let len = 512 * 1024;
        let mut parallel = vec![0u64; len];
        par_chunks_mut(&mut parallel, 1024, |i, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 1_000_003 + j) as u64;
            }
        });
        let mut serial = vec![0u64; len];
        for (i, chunk) in serial.chunks_mut(1024).enumerate() {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 1_000_003 + j) as u64;
            }
        }
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_and_zero_chunk_are_noops() {
        let mut empty: Vec<u8> = Vec::new();
        par_chunks_mut(&mut empty, 4, |_, _| panic!("must not be called"));
        let mut data = vec![1u8; 8];
        par_chunks_mut(&mut data, 0, |_, _| panic!("must not be called"));
        assert_eq!(data, vec![1u8; 8]);
    }

    #[test]
    fn short_final_chunk_is_delivered() {
        let mut data = vec![0usize; 10];
        par_chunks_mut(&mut data, 4, |i, chunk| {
            assert_eq!(chunk.len(), if i == 2 { 2 } else { 4 });
            chunk.iter_mut().for_each(|v| *v = i + 1);
        });
        assert_eq!(data[8..], [3, 3]);
    }
}
