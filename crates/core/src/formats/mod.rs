//! Compressed sparse formats.
//!
//! One format per sparsity pattern the paper evaluates:
//!
//! * [`csr::CsrMatrix`] — compressed sparse rows, the storage unstructured kernels
//!   (Sputnik, cuSPARSE) consume,
//! * [`block::BlockSparseMatrix`] — block compressed rows (BSR) with `V×V` blocks,
//! * [`vector_wise::VectorWiseMatrix`] — `V×1` column vectors grouped by `V`
//!   consecutive rows; the storage the paper's kernels use *after* the offline
//!   re-ordering step,
//! * [`balanced::BalancedMatrix`] — N:M balanced sparsity (the A100's 2-in-4),
//! * [`shfl_bw::ShflBwMatrix`] — the paper's format: a vector-wise matrix plus the
//!   original row indices needed by the reordered write-back phase.
//!
//! Every format converts to and from [`crate::matrix::DenseMatrix`] losslessly and
//! reports its metadata footprint so the kernels can charge it as DRAM traffic.

pub mod balanced;
pub mod block;
pub mod csr;
pub mod shfl_bw;
pub mod vector_wise;

pub use balanced::BalancedMatrix;
pub use block::BlockSparseMatrix;
pub use csr::CsrMatrix;
pub use shfl_bw::ShflBwMatrix;
pub use vector_wise::VectorWiseMatrix;
