//! Vector-wise storage: `V×1` column vectors inside groups of `V` consecutive rows.
//!
//! Vector-wise sparsity (Figure 3(c)) partitions the rows into groups of `V`
//! consecutive rows; inside each group a column is either kept for all `V` rows or
//! pruned for all of them. This is the storage the paper's Shfl-BW kernel operates on
//! *after* the offline row re-ordering (Figure 4, step (a)): values of one vector are
//! contiguous, so the kernel loads the sparse operand with fully-coalesced accesses.

use crate::error::{Error, Result};
use crate::matrix::DenseMatrix;
use std::fmt;

/// A vector-wise sparse matrix with vector length `V`.
///
/// Storage layout: for each row group `g` (of `V` consecutive rows) the kept column
/// indices are `col_idx[group_ptr[g]..group_ptr[g+1]]`; the values of the `j`-th kept
/// column of group `g` are the `V` consecutive entries starting at
/// `(group_ptr[g] + j) * V` — i.e. vectors are stored column-major inside a group, so
/// one vector is contiguous in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorWiseMatrix {
    rows: usize,
    cols: usize,
    v: usize,
    group_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl VectorWiseMatrix {
    /// Compresses a dense matrix into vector-wise form: inside each group of `V`
    /// consecutive rows, every column containing at least one non-zero is stored as a
    /// whole `V×1` vector (zeros inside a kept vector are stored explicitly, so the
    /// conversion is lossless for any input).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGroupSize`] if `v` is zero or does not divide the row
    /// count.
    pub fn from_dense(dense: &DenseMatrix, v: usize) -> Result<Self> {
        let (rows, cols) = dense.shape();
        if v == 0 || rows % v != 0 {
            return Err(Error::InvalidGroupSize {
                group: v,
                dimension: rows,
            });
        }
        let groups = rows / v;
        let mut group_ptr = Vec::with_capacity(groups + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        group_ptr.push(0);
        for g in 0..groups {
            for c in 0..cols {
                let any = (0..v).any(|r| dense.get(g * v + r, c) != 0.0);
                if any {
                    col_idx.push(c as u32);
                    for r in 0..v {
                        values.push(dense.get(g * v + r, c));
                    }
                }
            }
            group_ptr.push(col_idx.len());
        }
        Ok(VectorWiseMatrix {
            rows,
            cols,
            v,
            group_ptr,
            col_idx,
            values,
        })
    }

    /// Assembles a vector-wise matrix directly from its compressed parts,
    /// without materialising a dense intermediate. This is the constructor for
    /// callers that synthesise structured weights at scale (e.g. the model
    /// engine building layer weights in compressed form).
    ///
    /// `group_ptr` must have `rows / v + 1` monotonically non-decreasing
    /// entries starting at 0 and ending at `col_idx.len()`; inside each group
    /// the column indices must be strictly increasing and `< cols`; `values`
    /// holds `V` entries per stored vector (vector-major, exactly the layout
    /// [`VectorWiseMatrix::from_dense`] produces).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidGroupSize`] if `v` is zero or does not divide `rows`.
    /// * [`Error::ShapeMismatch`] if the metadata arrays are inconsistent.
    /// * [`Error::DimensionMismatch`] if `values.len() != col_idx.len() * v`.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        v: usize,
        group_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if v == 0 || !rows.is_multiple_of(v) {
            return Err(Error::InvalidGroupSize {
                group: v,
                dimension: rows,
            });
        }
        let groups = rows / v;
        if group_ptr.len() != groups + 1
            || group_ptr.first() != Some(&0)
            || group_ptr.last() != Some(&col_idx.len())
        {
            return Err(Error::ShapeMismatch {
                context: format!(
                    "group_ptr has {} entries ending at {:?}, expected {} ending at {}",
                    group_ptr.len(),
                    group_ptr.last(),
                    groups + 1,
                    col_idx.len()
                ),
            });
        }
        for g in 0..groups {
            let (start, end) = (group_ptr[g], group_ptr[g + 1]);
            if start > end || end > col_idx.len() {
                return Err(Error::ShapeMismatch {
                    context: format!("group {g} pointer range {start}..{end} is invalid"),
                });
            }
            let group_cols = &col_idx[start..end];
            if group_cols.iter().any(|c| *c as usize >= cols) {
                return Err(Error::ShapeMismatch {
                    context: format!("group {g} references a column >= {cols}"),
                });
            }
            if group_cols.windows(2).any(|w| w[0] >= w[1]) {
                return Err(Error::ShapeMismatch {
                    context: format!("group {g} column indices are not strictly increasing"),
                });
            }
        }
        if values.len() != col_idx.len() * v {
            return Err(Error::DimensionMismatch {
                expected: col_idx.len() * v,
                actual: values.len(),
            });
        }
        Ok(VectorWiseMatrix {
            rows,
            cols,
            v,
            group_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows of the logical matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Vector length `V`.
    pub fn vector_size(&self) -> usize {
        self.v
    }

    /// Number of row groups (`rows / V`).
    pub fn num_groups(&self) -> usize {
        self.rows / self.v
    }

    /// Total number of stored vectors across all groups.
    pub fn stored_vectors(&self) -> usize {
        self.col_idx.len()
    }

    /// Total number of stored values (`stored_vectors × V`).
    pub fn stored_values(&self) -> usize {
        self.values.len()
    }

    /// Fraction of the logical matrix that is stored.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.stored_values() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Group pointer array (length `num_groups + 1`), indexing into the column-index
    /// array.
    pub fn group_ptr(&self) -> &[usize] {
        &self.group_ptr
    }

    /// Column indices of all stored vectors.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// All stored values, vector-major across groups (the exact layout
    /// [`VectorWiseMatrix::from_parts`] consumes).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Column indices kept by one row group.
    ///
    /// # Panics
    ///
    /// Panics if `group >= num_groups`.
    pub fn group_cols(&self, group: usize) -> &[u32] {
        assert!(group < self.num_groups(), "group index out of bounds");
        &self.col_idx[self.group_ptr[group]..self.group_ptr[group + 1]]
    }

    /// The `V` values of the `j`-th kept vector of `group` (ordered by row inside the
    /// group).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn vector_values(&self, group: usize, j: usize) -> &[f32] {
        let cols = self.group_cols(group);
        assert!(j < cols.len(), "vector index out of bounds");
        let offset = (self.group_ptr[group] + j) * self.v;
        &self.values[offset..offset + self.v]
    }

    /// All values stored for one group, vector-major (`group_nnz_cols × V`).
    ///
    /// # Panics
    ///
    /// Panics if `group >= num_groups`.
    pub fn group_values(&self, group: usize) -> &[f32] {
        assert!(group < self.num_groups(), "group index out of bounds");
        let start = self.group_ptr[group] * self.v;
        let end = self.group_ptr[group + 1] * self.v;
        &self.values[start..end]
    }

    /// Bytes of sparse metadata: group pointers and per-vector column indices as
    /// `u32`. The metadata per stored value is `V` times smaller than CSR's.
    pub fn metadata_bytes(&self) -> u64 {
        ((self.group_ptr.len() + self.col_idx.len()) * std::mem::size_of::<u32>()) as u64
    }

    /// Bytes of stored values assuming fp16 storage.
    pub fn value_bytes_fp16(&self) -> u64 {
        (self.values.len() * 2) as u64
    }

    /// Decompresses back to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for g in 0..self.num_groups() {
            for (j, c) in self.group_cols(g).iter().enumerate() {
                let vals = self.vector_values(g, j);
                for (r, value) in vals.iter().enumerate() {
                    out.set(g * self.v + r, *c as usize, *value);
                }
            }
        }
        out
    }
}

impl fmt::Display for VectorWiseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VectorWiseMatrix {}x{} (V={}, {} vectors, {:.1}% dense)",
            self.rows,
            self.cols,
            self.v,
            self.stored_vectors(),
            self.density() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vector_wise_dense(groups: usize, v: usize, cols: usize, keep_every: usize) -> DenseMatrix {
        DenseMatrix::from_fn(groups * v, cols, |r, c| {
            if (c + (r / v)).is_multiple_of(keep_every) {
                (r * cols + c + 1) as f32
            } else {
                0.0
            }
        })
    }

    #[test]
    fn roundtrip_structured_matrix() {
        let dense = vector_wise_dense(4, 8, 32, 4);
        let vw = VectorWiseMatrix::from_dense(&dense, 8).unwrap();
        assert_eq!(vw.to_dense(), dense);
        assert_eq!(vw.num_groups(), 4);
        assert_eq!(vw.stored_vectors(), 4 * 8);
        assert!((vw.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_unstructured_matrix_is_lossless_but_denser() {
        // An unstructured matrix still round-trips; it just keeps more vectors.
        let mut rng = StdRng::seed_from_u64(3);
        let dense = DenseMatrix::from_fn(16, 24, |_, _| {
            if rng.gen_bool(0.1) {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        let vw = VectorWiseMatrix::from_dense(&dense, 4).unwrap();
        assert_eq!(vw.to_dense(), dense);
        assert!(vw.density() >= dense.density());
    }

    #[test]
    fn rejects_bad_group_size() {
        let dense = DenseMatrix::zeros(10, 4);
        assert!(VectorWiseMatrix::from_dense(&dense, 4).is_err());
        assert!(VectorWiseMatrix::from_dense(&dense, 0).is_err());
    }

    #[test]
    fn group_accessors() {
        let dense = DenseMatrix::from_fn(4, 4, |r, c| {
            if c == 1 || (c == 3 && r >= 2) {
                1.0 + (r * 4 + c) as f32
            } else {
                0.0
            }
        });
        let vw = VectorWiseMatrix::from_dense(&dense, 2).unwrap();
        assert_eq!(vw.group_cols(0), &[1]);
        assert_eq!(vw.group_cols(1), &[1, 3]);
        assert_eq!(vw.vector_values(1, 1), &[12.0, 16.0]);
        assert_eq!(vw.group_values(0).len(), 2);
    }

    #[test]
    fn vectors_are_contiguous_in_storage() {
        // The whole point of the format: one vector's V values occupy consecutive
        // memory so the kernel's loads are coalesced.
        let dense = vector_wise_dense(2, 4, 8, 2);
        let vw = VectorWiseMatrix::from_dense(&dense, 4).unwrap();
        let v0 = vw.vector_values(0, 0).to_vec();
        let expected: Vec<f32> = (0..4).map(|r| dense.get(r, 0)).collect();
        assert_eq!(v0, expected);
    }

    #[test]
    fn metadata_shrinks_with_vector_size() {
        let dense = vector_wise_dense(8, 8, 64, 4);
        let vw8 = VectorWiseMatrix::from_dense(&dense, 8).unwrap();
        let vw2 = VectorWiseMatrix::from_dense(&dense, 2).unwrap();
        assert!(vw8.metadata_bytes() < vw2.metadata_bytes());
    }

    #[test]
    fn empty_matrix() {
        let dense = DenseMatrix::zeros(8, 8);
        let vw = VectorWiseMatrix::from_dense(&dense, 4).unwrap();
        assert_eq!(vw.stored_vectors(), 0);
        assert_eq!(vw.to_dense(), dense);
    }

    #[test]
    fn from_parts_roundtrips_through_from_dense() {
        let dense = vector_wise_dense(3, 4, 16, 3);
        let vw = VectorWiseMatrix::from_dense(&dense, 4).unwrap();
        let rebuilt = VectorWiseMatrix::from_parts(
            vw.rows(),
            vw.cols(),
            vw.vector_size(),
            vw.group_ptr().to_vec(),
            vw.col_idx().to_vec(),
            vw.values().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, vw);
        assert_eq!(rebuilt.to_dense(), dense);
    }

    #[test]
    fn from_parts_rejects_inconsistent_metadata() {
        // Bad group size.
        assert!(VectorWiseMatrix::from_parts(6, 4, 4, vec![0, 0], vec![], vec![]).is_err());
        // group_ptr does not end at col_idx.len().
        assert!(VectorWiseMatrix::from_parts(4, 4, 4, vec![0, 2], vec![1], vec![0.0; 4]).is_err());
        // Column out of range.
        assert!(VectorWiseMatrix::from_parts(4, 4, 4, vec![0, 1], vec![7], vec![0.0; 4]).is_err());
        // Not strictly increasing inside a group.
        assert!(
            VectorWiseMatrix::from_parts(4, 4, 4, vec![0, 2], vec![2, 2], vec![0.0; 8]).is_err()
        );
        // Wrong value count.
        assert!(VectorWiseMatrix::from_parts(4, 4, 4, vec![0, 1], vec![1], vec![0.0; 3]).is_err());
        // A consistent assembly passes.
        assert!(
            VectorWiseMatrix::from_parts(4, 4, 4, vec![0, 2], vec![0, 3], vec![1.0; 8]).is_ok()
        );
    }
}
