//! Block compressed row (BSR) storage for block-wise sparsity.
//!
//! Block-wise sparsity keeps or prunes whole `V×V` blocks (Figure 3(d)). The resulting
//! matrix can be tiled directly into dense sub-matrices, so a tensor-core kernel can
//! treat every stored block exactly like a dense GEMM tile — the most
//! computation-friendly pattern in the paper's spectrum, and the least flexible one.

use crate::error::{Error, Result};
use crate::matrix::DenseMatrix;
use std::fmt;

/// A block-sparse matrix with square `V×V` blocks stored in block-compressed rows.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSparseMatrix {
    rows: usize,
    cols: usize,
    v: usize,
    block_row_ptr: Vec<usize>,
    block_col_idx: Vec<u32>,
    /// Block values, row-major inside each block, `v*v` values per stored block.
    values: Vec<f32>,
}

impl BlockSparseMatrix {
    /// Compresses a dense matrix into `v×v` blocks, storing every block that contains
    /// at least one non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGroupSize`] if `v` is zero or does not divide both the
    /// row and column count.
    pub fn from_dense(dense: &DenseMatrix, v: usize) -> Result<Self> {
        let (rows, cols) = dense.shape();
        if v == 0 || rows % v != 0 {
            return Err(Error::InvalidGroupSize {
                group: v,
                dimension: rows,
            });
        }
        if cols % v != 0 {
            return Err(Error::InvalidGroupSize {
                group: v,
                dimension: cols,
            });
        }
        let block_rows = rows / v;
        let block_cols = cols / v;
        let mut block_row_ptr = Vec::with_capacity(block_rows + 1);
        let mut block_col_idx = Vec::new();
        let mut values = Vec::new();
        block_row_ptr.push(0);
        for br in 0..block_rows {
            for bc in 0..block_cols {
                let mut any = false;
                'scan: for r in 0..v {
                    for c in 0..v {
                        if dense.get(br * v + r, bc * v + c) != 0.0 {
                            any = true;
                            break 'scan;
                        }
                    }
                }
                if any {
                    block_col_idx.push(bc as u32);
                    for r in 0..v {
                        for c in 0..v {
                            values.push(dense.get(br * v + r, bc * v + c));
                        }
                    }
                }
            }
            block_row_ptr.push(block_col_idx.len());
        }
        Ok(BlockSparseMatrix {
            rows,
            cols,
            v,
            block_row_ptr,
            block_col_idx,
            values,
        })
    }

    /// Number of rows of the logical (uncompressed) matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block edge length `V`.
    pub fn block_size(&self) -> usize {
        self.v
    }

    /// Number of block rows (`rows / V`).
    pub fn block_rows(&self) -> usize {
        self.rows / self.v
    }

    /// Number of block columns (`cols / V`).
    pub fn block_cols(&self) -> usize {
        self.cols / self.v
    }

    /// Number of stored blocks.
    pub fn stored_blocks(&self) -> usize {
        self.block_col_idx.len()
    }

    /// Number of stored values (`stored_blocks × V²`).
    pub fn stored_values(&self) -> usize {
        self.values.len()
    }

    /// Fraction of the logical matrix covered by stored blocks.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.stored_values() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Block-row pointer array (length `block_rows + 1`).
    pub fn block_row_ptr(&self) -> &[usize] {
        &self.block_row_ptr
    }

    /// Block-column indices of the stored blocks.
    pub fn block_col_idx(&self) -> &[u32] {
        &self.block_col_idx
    }

    /// Block column indices stored in one block row.
    ///
    /// # Panics
    ///
    /// Panics if `block_row >= block_rows`.
    pub fn blocks_in_row(&self, block_row: usize) -> &[u32] {
        assert!(block_row < self.block_rows(), "block row out of bounds");
        let start = self.block_row_ptr[block_row];
        let end = self.block_row_ptr[block_row + 1];
        &self.block_col_idx[start..end]
    }

    /// Values of the `i`-th stored block within `block_row` (row-major `V×V` slice).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn block_values(&self, block_row: usize, i: usize) -> &[f32] {
        assert!(block_row < self.block_rows(), "block row out of bounds");
        let start = self.block_row_ptr[block_row];
        let end = self.block_row_ptr[block_row + 1];
        assert!(i < end - start, "block index out of bounds");
        let offset = (start + i) * self.v * self.v;
        &self.values[offset..offset + self.v * self.v]
    }

    /// Bytes of sparse metadata (block row pointers and block column indices as
    /// `u32`). Metadata per value is `V²` times smaller than CSR's.
    pub fn metadata_bytes(&self) -> u64 {
        ((self.block_row_ptr.len() + self.block_col_idx.len()) * std::mem::size_of::<u32>()) as u64
    }

    /// Bytes of stored values assuming fp16 storage.
    pub fn value_bytes_fp16(&self) -> u64 {
        (self.values.len() * 2) as u64
    }

    /// Decompresses back to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for br in 0..self.block_rows() {
            let start = self.block_row_ptr[br];
            for (i, bc) in self.blocks_in_row(br).iter().enumerate() {
                let offset = (start + i) * self.v * self.v;
                for r in 0..self.v {
                    for c in 0..self.v {
                        out.set(
                            br * self.v + r,
                            *bc as usize * self.v + c,
                            self.values[offset + r * self.v + c],
                        );
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for BlockSparseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BlockSparseMatrix {}x{} (V={}, {} blocks, {:.1}% dense)",
            self.rows,
            self.cols,
            self.v,
            self.stored_blocks(),
            self.density() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_diagonal(n_blocks: usize, v: usize) -> DenseMatrix {
        DenseMatrix::from_fn(n_blocks * v, n_blocks * v, |r, c| {
            if r / v == c / v {
                (r + c + 1) as f32
            } else {
                0.0
            }
        })
    }

    #[test]
    fn roundtrip_block_diagonal() {
        let dense = block_diagonal(3, 4);
        let bsr = BlockSparseMatrix::from_dense(&dense, 4).unwrap();
        assert_eq!(bsr.stored_blocks(), 3);
        assert_eq!(bsr.to_dense(), dense);
        assert!((bsr.density() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_matrix_with_partial_blocks() {
        // A matrix whose non-zeros do not fill whole blocks still round-trips; it just
        // stores the containing blocks densely.
        let mut dense = DenseMatrix::zeros(8, 8);
        dense.set(1, 5, 3.0);
        let bsr = BlockSparseMatrix::from_dense(&dense, 4).unwrap();
        assert_eq!(bsr.stored_blocks(), 1);
        assert_eq!(bsr.to_dense(), dense);
    }

    #[test]
    fn rejects_non_divisible_dimensions() {
        let dense = DenseMatrix::zeros(6, 8);
        assert!(BlockSparseMatrix::from_dense(&dense, 4).is_err());
        let dense = DenseMatrix::zeros(8, 6);
        assert!(BlockSparseMatrix::from_dense(&dense, 4).is_err());
        let dense = DenseMatrix::zeros(8, 8);
        assert!(BlockSparseMatrix::from_dense(&dense, 0).is_err());
    }

    #[test]
    fn block_accessors() {
        let dense = block_diagonal(2, 2);
        let bsr = BlockSparseMatrix::from_dense(&dense, 2).unwrap();
        assert_eq!(bsr.block_rows(), 2);
        assert_eq!(bsr.block_cols(), 2);
        assert_eq!(bsr.blocks_in_row(0), &[0]);
        assert_eq!(bsr.blocks_in_row(1), &[1]);
        let b0 = bsr.block_values(0, 0);
        assert_eq!(b0, &[1.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    fn metadata_is_much_smaller_than_csr() {
        let dense = block_diagonal(4, 8);
        let bsr = BlockSparseMatrix::from_dense(&dense, 8).unwrap();
        let csr = crate::formats::csr::CsrMatrix::from_dense(&dense);
        assert!(bsr.metadata_bytes() * 10 < csr.metadata_bytes());
    }

    #[test]
    fn empty_matrix_has_no_blocks() {
        let dense = DenseMatrix::zeros(8, 8);
        let bsr = BlockSparseMatrix::from_dense(&dense, 4).unwrap();
        assert_eq!(bsr.stored_blocks(), 0);
        assert_eq!(bsr.to_dense(), dense);
    }
}
