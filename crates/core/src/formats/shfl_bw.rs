//! The Shfl-BW format: a vector-wise matrix plus the original row order.
//!
//! This is the paper's central data structure (Figure 4, step (a)): a Shfl-BW sparse
//! weight matrix is stored as
//!
//! 1. a row permutation that groups rows with identical column patterns into groups of
//!    `V` (the *offline processing* step), and
//! 2. a [`VectorWiseMatrix`] holding the permuted matrix, so that each stored vector is
//!    contiguous in memory and can be loaded with coalesced accesses,
//! 3. the array of original row indices (`row_indices`), which the kernel reads during
//!    the *reordered write-back* phase (Figure 4, step (e)) to place each output row at
//!    its original position.
//!
//! The execution-time transformation "Shfl-BW → vector-wise → block-wise" that the
//! paper describes is therefore: the permutation is applied once offline here, and the
//! in-buffer column stitching in the kernel turns the vector-wise groups into dense
//! tiles.

use crate::error::{Error, Result};
use crate::formats::vector_wise::VectorWiseMatrix;
use crate::mask::BinaryMask;
use crate::matrix::DenseMatrix;
use crate::pattern::shfl_bw_grouping_permutation;
use std::fmt;

/// A Shfl-BW sparse matrix: vector-wise storage in shuffled row order plus the
/// original row indices for the reordered write-back.
#[derive(Debug, Clone, PartialEq)]
pub struct ShflBwMatrix {
    /// Vector-wise storage of the row-permuted matrix.
    inner: VectorWiseMatrix,
    /// `row_indices[permuted_row] = original_row`: where each stored row must be
    /// written back in the output.
    row_indices: Vec<u32>,
}

impl ShflBwMatrix {
    /// Compresses a dense matrix whose non-zero structure satisfies the Shfl-BW
    /// pattern for vector length `v`, discovering the grouping permutation
    /// automatically.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidGroupSize`] if `v` is zero or does not divide the row count.
    /// * [`Error::PatternViolation`] if no row permutation makes the non-zero
    ///   structure vector-wise (i.e. the matrix is not Shfl-BW for this `v`).
    pub fn from_dense(dense: &DenseMatrix, v: usize) -> Result<Self> {
        let (rows, _) = dense.shape();
        if v == 0 || rows % v != 0 {
            return Err(Error::InvalidGroupSize {
                group: v,
                dimension: rows,
            });
        }
        let mask = BinaryMask::from_nonzeros(dense);
        let perm =
            shfl_bw_grouping_permutation(&mask, v).ok_or_else(|| Error::PatternViolation {
                context: format!("matrix is not Shfl-BW for V={v}: no grouping permutation exists"),
            })?;
        Self::from_dense_with_permutation(dense, &perm, v)
    }

    /// Compresses a dense matrix using a caller-provided row permutation (typically
    /// produced by the pruning search in `shfl-pruning`). Output row `i` of the
    /// internal storage holds original row `permutation[i]`.
    ///
    /// The conversion is lossless for any permutation: columns that are only partially
    /// populated inside a group are stored as full vectors with explicit zeros.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidGroupSize`] if `v` is zero or does not divide the row count.
    /// * [`Error::InvalidPermutation`] if `permutation` is not a permutation of
    ///   `0..rows`.
    pub fn from_dense_with_permutation(
        dense: &DenseMatrix,
        permutation: &[usize],
        v: usize,
    ) -> Result<Self> {
        let (rows, _) = dense.shape();
        if v == 0 || rows % v != 0 {
            return Err(Error::InvalidGroupSize {
                group: v,
                dimension: rows,
            });
        }
        let permuted = dense.permuted_rows(permutation)?;
        let inner = VectorWiseMatrix::from_dense(&permuted, v)?;
        let row_indices = permutation.iter().map(|p| *p as u32).collect();
        Ok(ShflBwMatrix { inner, row_indices })
    }

    /// Wraps an already-built vector-wise storage with the original row order,
    /// without materialising the dense matrix. `row_indices[permuted_row]`
    /// gives the original row each stored row is written back to.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPermutation`] if `row_indices` is not a
    /// permutation of `0..inner.rows()`.
    pub fn from_vector_wise(inner: VectorWiseMatrix, row_indices: Vec<u32>) -> Result<Self> {
        let as_usize: Vec<usize> = row_indices.iter().map(|r| *r as usize).collect();
        crate::matrix::validate_permutation(&as_usize, inner.rows())?;
        Ok(ShflBwMatrix { inner, row_indices })
    }

    /// Number of rows of the logical matrix.
    pub fn rows(&self) -> usize {
        self.inner.rows()
    }

    /// Number of columns of the logical matrix.
    pub fn cols(&self) -> usize {
        self.inner.cols()
    }

    /// Vector length `V`.
    pub fn vector_size(&self) -> usize {
        self.inner.vector_size()
    }

    /// Number of shuffled row groups.
    pub fn num_groups(&self) -> usize {
        self.inner.num_groups()
    }

    /// Number of stored vectors.
    pub fn stored_vectors(&self) -> usize {
        self.inner.stored_vectors()
    }

    /// Number of stored values.
    pub fn stored_values(&self) -> usize {
        self.inner.stored_values()
    }

    /// Fraction of the logical matrix that is stored.
    pub fn density(&self) -> f64 {
        self.inner.density()
    }

    /// The vector-wise storage of the permuted matrix (what the kernel main loop
    /// consumes).
    pub fn vector_wise(&self) -> &VectorWiseMatrix {
        &self.inner
    }

    /// Original row index of each stored (permuted) row — the array consumed by the
    /// kernel's reordered write-back phase.
    pub fn row_indices(&self) -> &[u32] {
        &self.row_indices
    }

    /// Original row indices covered by one shuffled group, in storage order.
    ///
    /// # Panics
    ///
    /// Panics if `group >= num_groups`.
    pub fn group_row_indices(&self, group: usize) -> &[u32] {
        assert!(group < self.num_groups(), "group index out of bounds");
        let v = self.vector_size();
        &self.row_indices[group * v..(group + 1) * v]
    }

    /// Whether `other` is a *same-pattern magnitude update* of this matrix:
    /// identical vector size, shape, group boundaries, kept columns, and row
    /// permutation — only the stored values may differ.
    ///
    /// This is the gate for the delta re-pack path of live weight updates:
    /// when the pattern is unchanged, a prepared plan's panel layout is still
    /// valid and only the payload bytes need rewriting
    /// ([`crate::packed::PackedPanels::repack_vector_wise_values`]).
    pub fn same_pattern(&self, other: &ShflBwMatrix) -> bool {
        self.vector_size() == other.vector_size()
            && self.rows() == other.rows()
            && self.cols() == other.cols()
            && self.inner.group_ptr() == other.inner.group_ptr()
            && self.inner.col_idx() == other.inner.col_idx()
            && self.row_indices == other.row_indices
    }

    /// Bytes of sparse metadata: the vector-wise metadata plus the row-index array
    /// (`u32` per row) needed for the reordered write-back.
    pub fn metadata_bytes(&self) -> u64 {
        self.inner.metadata_bytes() + (self.row_indices.len() * std::mem::size_of::<u32>()) as u64
    }

    /// Bytes of stored values assuming fp16 storage.
    pub fn value_bytes_fp16(&self) -> u64 {
        self.inner.value_bytes_fp16()
    }

    /// Decompresses back to a dense matrix in the *original* row order.
    pub fn to_dense(&self) -> DenseMatrix {
        let permuted = self.inner.to_dense();
        let mut out = DenseMatrix::zeros(self.rows(), self.cols());
        for (stored_row, original_row) in self.row_indices.iter().enumerate() {
            out.row_mut(*original_row as usize)
                .copy_from_slice(permuted.row(stored_row));
        }
        out
    }
}

impl fmt::Display for ShflBwMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ShflBwMatrix {}x{} (V={}, {} vectors, {:.1}% dense)",
            self.rows(),
            self.cols(),
            self.vector_size(),
            self.stored_vectors(),
            self.density() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Figure 3(b)-style matrix: rows with identical patterns scattered
    /// through the matrix (rows 0/2 share a pattern, rows 1/3 share another).
    fn scattered_dense() -> DenseMatrix {
        DenseMatrix::from_fn(4, 6, |r, c| {
            let keep = if r % 2 == 0 {
                c == 0 || c == 3
            } else {
                c == 1 || c == 5
            };
            if keep {
                (r * 6 + c + 1) as f32
            } else {
                0.0
            }
        })
    }

    #[test]
    fn from_dense_discovers_permutation_and_roundtrips() {
        let dense = scattered_dense();
        let shfl = ShflBwMatrix::from_dense(&dense, 2).unwrap();
        assert_eq!(shfl.to_dense(), dense);
        assert_eq!(shfl.num_groups(), 2);
        // Each group stores 2 column vectors.
        assert_eq!(shfl.stored_vectors(), 4);
    }

    #[test]
    fn from_dense_rejects_non_shfl_bw_structure() {
        // Three distinct row patterns cannot be grouped in pairs.
        let dense = DenseMatrix::from_fn(4, 4, |r, c| if c == r { 1.0 } else { 0.0 });
        let err = ShflBwMatrix::from_dense(&dense, 2).unwrap_err();
        assert!(matches!(err, Error::PatternViolation { .. }));
    }

    #[test]
    fn from_dense_with_permutation_roundtrips_any_matrix() {
        // With an explicit permutation the conversion is lossless even when the
        // structure is not perfectly vector-wise after shuffling.
        let dense = DenseMatrix::from_fn(6, 5, |r, c| ((r * 5 + c) % 3) as f32);
        let perm = vec![4, 2, 0, 5, 1, 3];
        let shfl = ShflBwMatrix::from_dense_with_permutation(&dense, &perm, 3).unwrap();
        assert_eq!(shfl.to_dense(), dense);
        assert_eq!(shfl.row_indices(), &[4, 2, 0, 5, 1, 3]);
    }

    #[test]
    fn rejects_bad_group_size_and_permutation() {
        let dense = DenseMatrix::zeros(6, 4);
        assert!(ShflBwMatrix::from_dense(&dense, 4).is_err());
        assert!(ShflBwMatrix::from_dense(&dense, 0).is_err());
        let bad_perm = vec![0, 0, 1, 2, 3, 4];
        assert!(ShflBwMatrix::from_dense_with_permutation(&dense, &bad_perm, 3).is_err());
    }

    #[test]
    fn group_row_indices_expose_the_shuffle() {
        let dense = scattered_dense();
        let shfl = ShflBwMatrix::from_dense(&dense, 2).unwrap();
        let g0: Vec<u32> = shfl.group_row_indices(0).to_vec();
        let g1: Vec<u32> = shfl.group_row_indices(1).to_vec();
        // Groups must contain {0, 2} and {1, 3} in some order.
        let mut all: Vec<u32> = g0.iter().chain(g1.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert_eq!(g0[0] % 2, g0[1] % 2, "group 0 mixes the two patterns");
    }

    #[test]
    fn metadata_includes_row_indices() {
        let dense = scattered_dense();
        let shfl = ShflBwMatrix::from_dense(&dense, 2).unwrap();
        let vw_meta = shfl.vector_wise().metadata_bytes();
        assert_eq!(shfl.metadata_bytes(), vw_meta + 4 * 4);
    }

    #[test]
    fn from_vector_wise_wraps_storage_without_densifying() {
        let dense = scattered_dense();
        let via_dense = ShflBwMatrix::from_dense(&dense, 2).unwrap();
        let rebuilt = ShflBwMatrix::from_vector_wise(
            via_dense.vector_wise().clone(),
            via_dense.row_indices().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, via_dense);
        assert_eq!(rebuilt.to_dense(), dense);
        // Rejects a non-permutation.
        let bad = ShflBwMatrix::from_vector_wise(via_dense.vector_wise().clone(), vec![0, 0, 1, 2]);
        assert!(bad.is_err());
    }

    #[test]
    fn same_pattern_accepts_magnitude_updates_and_rejects_structure_changes() {
        let dense = scattered_dense();
        let a = ShflBwMatrix::from_dense(&dense, 2).unwrap();
        // Magnitude-only update: scale every kept value.
        let scaled = DenseMatrix::from_fn(4, 6, |r, c| dense.get(r, c) * 3.0);
        let b = ShflBwMatrix::from_dense(&scaled, 2).unwrap();
        assert!(a.same_pattern(&b));
        assert!(b.same_pattern(&a));
        assert!(a.same_pattern(&a));
        // Different kept columns: even rows keep {0, 4} instead of {0, 3}.
        let moved = DenseMatrix::from_fn(4, 6, |r, c| {
            let keep = if r % 2 == 0 {
                c == 0 || c == 4
            } else {
                c == 1 || c == 5
            };
            if keep {
                1.0
            } else {
                0.0
            }
        });
        let c = ShflBwMatrix::from_dense(&moved, 2).unwrap();
        assert!(!a.same_pattern(&c));
    }

    #[test]
    fn identity_permutation_equals_vector_wise_storage() {
        let dense = DenseMatrix::from_fn(
            4,
            4,
            |r, c| {
                if c % 2 == 0 {
                    (r + c + 1) as f32
                } else {
                    0.0
                }
            },
        );
        let perm: Vec<usize> = (0..4).collect();
        let shfl = ShflBwMatrix::from_dense_with_permutation(&dense, &perm, 2).unwrap();
        let vw = VectorWiseMatrix::from_dense(&dense, 2).unwrap();
        assert_eq!(shfl.vector_wise(), &vw);
        assert_eq!(shfl.to_dense(), dense);
    }
}
