//! Compressed Sparse Row storage for unstructured sparsity.
//!
//! CSR is the format the unstructured baselines in the paper (Sputnik and cuSPARSE)
//! consume: one row-pointer array, one column-index array and one value array. It
//! places no constraint on the non-zero structure, which is why CUDA-core SpMM kernels
//! over CSR expose so little data reuse (§2.1, Figure 1).

use crate::error::{Error, Result};
use crate::matrix::DenseMatrix;
use std::fmt;

/// An unstructured sparse matrix in CSR form.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Compresses the non-zero entries of a dense matrix.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let (rows, cols) = dense.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense.get(r, c);
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the arrays are inconsistent (wrong
    /// row-pointer length, non-monotonic row pointers, column index out of range, or
    /// values/col_idx length mismatch).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(Error::ShapeMismatch {
                context: format!(
                    "row_ptr length {} != rows + 1 = {}",
                    row_ptr.len(),
                    rows + 1
                ),
            });
        }
        if col_idx.len() != values.len() {
            return Err(Error::ShapeMismatch {
                context: format!(
                    "col_idx length {} != values length {}",
                    col_idx.len(),
                    values.len()
                ),
            });
        }
        if row_ptr.first() != Some(&0) || row_ptr.last() != Some(&values.len()) {
            return Err(Error::ShapeMismatch {
                context: "row_ptr must start at 0 and end at nnz".to_string(),
            });
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(Error::ShapeMismatch {
                context: "row_ptr must be non-decreasing".to_string(),
            });
        }
        if col_idx.iter().any(|c| *c as usize >= cols) {
            return Err(Error::ShapeMismatch {
                context: "column index out of range".to_string(),
            });
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are stored.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Row-pointer array (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices of the stored entries.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Stored values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Column indices and values of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row_entries(&self, row: usize) -> (&[u32], &[f32]) {
        assert!(row < self.rows, "row index out of bounds");
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Bytes of sparse metadata (row pointers as `u32` plus column indices as `u32`),
    /// charged as DRAM traffic by the kernels.
    pub fn metadata_bytes(&self) -> u64 {
        ((self.row_ptr.len() + self.col_idx.len()) * std::mem::size_of::<u32>()) as u64
    }

    /// Bytes of stored values assuming fp16 storage (2 bytes per value), matching the
    /// paper's half-precision kernels.
    pub fn value_bytes_fp16(&self) -> u64 {
        (self.values.len() * 2) as u64
    }

    /// Decompresses back to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row_entries(r);
            for (c, v) in cols.iter().zip(vals.iter()) {
                out.set(r, *c as usize, *v);
            }
        }
        out
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix {}x{} ({} non-zeros, {:.1}% dense)",
            self.rows,
            self.cols,
            self.nnz(),
            self.density() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_small_matrix() {
        let dense = DenseMatrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0]).unwrap();
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row_ptr(), &[0, 2, 3]);
        assert_eq!(csr.col_idx(), &[0, 2, 2]);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn roundtrip_random_sparse_matrix() {
        let mut rng = StdRng::seed_from_u64(7);
        let dense = DenseMatrix::from_fn(37, 53, |_, _| {
            if rng.gen_bool(0.2) {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.to_dense(), dense);
        assert_eq!(csr.nnz(), dense.nnz());
    }

    #[test]
    fn row_entries_and_density() {
        let dense = DenseMatrix::from_vec(2, 2, vec![0.0, 5.0, 0.0, 0.0]).unwrap();
        let csr = CsrMatrix::from_dense(&dense);
        let (cols, vals) = csr.row_entries(0);
        assert_eq!(cols, &[1]);
        assert_eq!(vals, &[5.0]);
        assert!((csr.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 1], vec![0], vec![1.0]).is_ok());
        // Wrong row_ptr length.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // Mismatched col/value lengths.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 1], vec![0, 1], vec![1.0]).is_err());
        // Column out of range.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 1], vec![7], vec![1.0]).is_err());
        // Non-monotonic row_ptr.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn metadata_and_value_bytes() {
        let dense = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.metadata_bytes(), ((3 + 2) * 4) as u64);
        assert_eq!(csr.value_bytes_fp16(), 4);
    }

    #[test]
    fn empty_matrix() {
        let dense = DenseMatrix::zeros(4, 4);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.to_dense(), dense);
    }
}
