//! Balanced N:M sparsity storage (the A100's 2-in-4 pattern).
//!
//! Balanced sparsity keeps at most `m` non-zeros inside every aligned group of `n`
//! consecutive elements of a row. The A100 tensor cores accelerate `m = 2, n = 4` at
//! exactly 50% sparsity (§2.2). The format stores, per group, exactly `m` value slots
//! plus 2-bit-style position indices (stored as `u8` here); groups with fewer than `m`
//! non-zeros pad with explicit zeros.

use crate::error::{Error, Result};
use crate::matrix::DenseMatrix;
use std::fmt;

/// A balanced N:M sparse matrix (`m` kept out of every `n` consecutive row elements).
#[derive(Debug, Clone, PartialEq)]
pub struct BalancedMatrix {
    rows: usize,
    cols: usize,
    m: usize,
    n: usize,
    /// `rows × (cols / n) × m` values, row-major by (row, group, slot).
    values: Vec<f32>,
    /// Position of each stored value inside its group (`0..n`), same layout.
    indices: Vec<u8>,
}

impl BalancedMatrix {
    /// Compresses a dense matrix whose non-zero structure already satisfies the N:M
    /// constraint.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidBalancedShape`] if `m == 0`, `n == 0` or `m > n`.
    /// * [`Error::InvalidGroupSize`] if `n` does not divide the column count.
    /// * [`Error::PatternViolation`] if any group of `n` elements holds more than `m`
    ///   non-zeros.
    pub fn from_dense(dense: &DenseMatrix, m: usize, n: usize) -> Result<Self> {
        if m == 0 || n == 0 || m > n {
            return Err(Error::InvalidBalancedShape { m, n });
        }
        let (rows, cols) = dense.shape();
        if cols % n != 0 {
            return Err(Error::InvalidGroupSize {
                group: n,
                dimension: cols,
            });
        }
        let groups_per_row = cols / n;
        let mut values = Vec::with_capacity(rows * groups_per_row * m);
        let mut indices = Vec::with_capacity(rows * groups_per_row * m);
        for r in 0..rows {
            for g in 0..groups_per_row {
                let mut kept: Vec<(u8, f32)> = Vec::with_capacity(m);
                for i in 0..n {
                    let v = dense.get(r, g * n + i);
                    if v != 0.0 {
                        kept.push((i as u8, v));
                    }
                }
                if kept.len() > m {
                    return Err(Error::PatternViolation {
                        context: format!(
                            "row {r}, group {g} has {} non-zeros but the pattern allows {m} in {n}",
                            kept.len()
                        ),
                    });
                }
                while kept.len() < m {
                    kept.push((0, 0.0));
                }
                for (idx, v) in kept {
                    indices.push(idx);
                    values.push(v);
                }
            }
        }
        Ok(BalancedMatrix {
            rows,
            cols,
            m,
            n,
            values,
            indices,
        })
    }

    /// Number of rows of the logical matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Non-zeros kept per group (`m`).
    pub fn kept_per_group(&self) -> usize {
        self.m
    }

    /// Group length (`n`).
    pub fn group_length(&self) -> usize {
        self.n
    }

    /// Number of stored value slots (`rows × cols × m / n`), including padding zeros.
    pub fn stored_values(&self) -> usize {
        self.values.len()
    }

    /// Storage density relative to the dense matrix (`m / n`).
    pub fn storage_density(&self) -> f64 {
        self.m as f64 / self.n as f64
    }

    /// Bytes of stored values assuming fp16 storage.
    pub fn value_bytes_fp16(&self) -> u64 {
        (self.values.len() * 2) as u64
    }

    /// Bytes of position metadata. Each index needs `ceil(log2(n))` bits; the A100
    /// packs four 2-bit indices per byte, which is what this models for `n = 4`.
    pub fn metadata_bytes(&self) -> u64 {
        let bits_per_index = (usize::BITS - (self.n - 1).leading_zeros()).max(1) as u64;
        (self.indices.len() as u64 * bits_per_index).div_ceil(8)
    }

    /// Decompresses back to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let groups_per_row = self.cols / self.n;
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for g in 0..groups_per_row {
                for s in 0..self.m {
                    let flat = (r * groups_per_row + g) * self.m + s;
                    let v = self.values[flat];
                    if v != 0.0 {
                        let c = g * self.n + self.indices[flat] as usize;
                        out.set(r, c, v);
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for BalancedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BalancedMatrix {}x{} ({}:{} pattern, {} value slots)",
            self.rows,
            self.cols,
            self.m,
            self.n,
            self.stored_values()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_in_four(rows: usize, cols: usize) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |r, c| {
            // Keep positions 0 and 2 of every group of four (shifted by row for variety).
            let pos = c % 4;
            if (pos + r) % 4 == 0 || (pos + r) % 4 == 2 {
                (r * cols + c + 1) as f32
            } else {
                0.0
            }
        })
    }

    #[test]
    fn roundtrip_two_in_four() {
        let dense = two_in_four(8, 16);
        let bal = BalancedMatrix::from_dense(&dense, 2, 4).unwrap();
        assert_eq!(bal.to_dense(), dense);
        assert!((bal.storage_density() - 0.5).abs() < 1e-12);
        assert_eq!(bal.stored_values(), 8 * 16 / 2);
    }

    #[test]
    fn roundtrip_with_underfull_groups() {
        // Groups with fewer than m non-zeros are allowed and round-trip exactly.
        let mut dense = DenseMatrix::zeros(2, 8);
        dense.set(0, 1, 5.0);
        dense.set(1, 6, -2.0);
        let bal = BalancedMatrix::from_dense(&dense, 2, 4).unwrap();
        assert_eq!(bal.to_dense(), dense);
    }

    #[test]
    fn rejects_violating_matrices() {
        let mut dense = DenseMatrix::zeros(1, 4);
        dense.set(0, 0, 1.0);
        dense.set(0, 1, 1.0);
        dense.set(0, 2, 1.0);
        let err = BalancedMatrix::from_dense(&dense, 2, 4).unwrap_err();
        assert!(matches!(err, Error::PatternViolation { .. }));
    }

    #[test]
    fn rejects_bad_parameters() {
        let dense = DenseMatrix::zeros(2, 8);
        assert!(BalancedMatrix::from_dense(&dense, 0, 4).is_err());
        assert!(BalancedMatrix::from_dense(&dense, 5, 4).is_err());
        let dense = DenseMatrix::zeros(2, 6);
        assert!(BalancedMatrix::from_dense(&dense, 2, 4).is_err());
    }

    #[test]
    fn metadata_is_two_bits_per_slot_for_2in4() {
        let dense = two_in_four(4, 16);
        let bal = BalancedMatrix::from_dense(&dense, 2, 4).unwrap();
        // 4*16/4 groups * 2 slots = 32 slots, 2 bits each = 8 bytes.
        assert_eq!(bal.metadata_bytes(), 8);
    }

    #[test]
    fn accessors() {
        let dense = two_in_four(4, 8);
        let bal = BalancedMatrix::from_dense(&dense, 2, 4).unwrap();
        assert_eq!(bal.kept_per_group(), 2);
        assert_eq!(bal.group_length(), 4);
        assert_eq!(bal.rows(), 4);
        assert_eq!(bal.cols(), 8);
        assert!(format!("{bal}").contains("2:4"));
    }
}
