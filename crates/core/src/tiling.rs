//! Threadblock tiling configurations.
//!
//! Every kernel in `shfl-kernels` processes the output matrix in threadblock-scoped
//! tiles of `T_M × T_N`, looping over the reduction dimension in steps of `T_K`
//! (Figure 4). The tile shape determines the data reuse the kernel can reach and the
//! shared-memory / register footprint of one threadblock, which in turn drives the
//! occupancy model in `gpu-sim`. For vector-wise and Shfl-BW kernels the tile height
//! `T_M` is bounded by the vector length `V`, because only `V` rows share one column
//! pattern.

use crate::error::{Error, Result};
use std::fmt;

/// A threadblock tile configuration for a GEMM-like kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileConfig {
    /// Output tile height (rows of the sparse/left operand).
    pub tm: usize,
    /// Output tile width (columns of the dense/right operand).
    pub tn: usize,
    /// Reduction step per main-loop iteration.
    pub tk: usize,
}

impl TileConfig {
    /// Creates a tile configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if any dimension is zero.
    pub fn new(tm: usize, tn: usize, tk: usize) -> Result<Self> {
        if tm == 0 || tn == 0 || tk == 0 {
            return Err(Error::ShapeMismatch {
                context: format!("tile dimensions must be non-zero, got {tm}x{tn}x{tk}"),
            });
        }
        Ok(TileConfig { tm, tn, tk })
    }

    /// The default dense-GEMM tile used by the cuBLAS-like baseline: 128×128×32.
    pub fn dense_default() -> Self {
        TileConfig {
            tm: 128,
            tn: 128,
            tk: 32,
        }
    }

    /// Output accumulator footprint in bytes (fp32 accumulators).
    pub fn accumulator_bytes(&self) -> usize {
        self.tm * self.tn * std::mem::size_of::<f32>()
    }

    /// Shared-memory footprint of one double-buffered main-loop stage in bytes with
    /// fp16 operands: an `T_M×T_K` tile of the left operand plus a `T_K×T_N` tile of
    /// the right operand, times `stages` buffers.
    pub fn shared_memory_bytes(&self, stages: usize) -> usize {
        2 * (self.tm * self.tk + self.tk * self.tn) * stages.max(1)
    }

    /// FLOPs performed per main-loop iteration of one threadblock.
    pub fn flops_per_iteration(&self) -> u64 {
        2 * (self.tm * self.tn * self.tk) as u64
    }

    /// Bytes loaded per main-loop iteration with fp16 operands (left tile + right
    /// tile).
    pub fn bytes_per_iteration(&self) -> u64 {
        2 * (self.tm * self.tk + self.tk * self.tn) as u64
    }

    /// Operation intensity of the tile in FLOP per loaded byte — the tile-level data
    /// reuse the paper's §3.2.2 maximises.
    pub fn operation_intensity(&self) -> f64 {
        self.flops_per_iteration() as f64 / self.bytes_per_iteration() as f64
    }
}

impl fmt::Display for TileConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.tm, self.tn, self.tk)
    }
}

/// Selects the threadblock tile for a dense tensor-core GEMM of shape `m × n × k`,
/// shrinking the default 128×128 tile when the problem is smaller than one tile in a
/// dimension (as a tuned library would).
pub fn select_dense_tile(m: usize, n: usize, k: usize) -> TileConfig {
    let tm = if m >= 128 {
        128
    } else {
        m.next_power_of_two().clamp(16, 128)
    };
    let tn = if n >= 128 {
        128
    } else {
        n.next_power_of_two().clamp(16, 128)
    };
    let tk = if k >= 32 {
        32
    } else {
        k.next_power_of_two().clamp(16, 32)
    };
    TileConfig { tm, tn, tk }
}

/// Selects the threadblock tile for a vector-wise / Shfl-BW SpMM with vector length
/// `v` on an output of `n` columns: the tile height is the vector length (only `V`
/// rows share a column pattern), the width is up to 128 columns, and the reduction
/// step is the paper's "V×16 or larger" stitched tile.
pub fn select_vector_wise_tile(v: usize, n: usize) -> TileConfig {
    let tn = if n >= 128 {
        128
    } else {
        n.next_power_of_two().clamp(8, 128)
    };
    TileConfig {
        tm: v.max(1),
        tn,
        tk: 16,
    }
}

/// Number of threadblocks a GEMM-like kernel launches for an `m × n` output with the
/// given tile, optionally splitting the reduction dimension `split_k` ways.
pub fn grid_size(m: usize, n: usize, tile: TileConfig, split_k: usize) -> u64 {
    (m.div_ceil(tile.tm) as u64) * (n.div_ceil(tile.tn) as u64) * split_k.max(1) as u64
}

/// Chooses a split-K factor so the grid has at least `target_blocks` threadblocks (as
/// tuned GEMM libraries do for small outputs), capped at 8.
pub fn select_split_k(m: usize, n: usize, k: usize, tile: TileConfig, target_blocks: u64) -> usize {
    let base = grid_size(m, n, tile, 1);
    if base >= target_blocks {
        return 1;
    }
    let needed = target_blocks.div_ceil(base.max(1)) as usize;
    let max_split = (k / tile.tk.max(1)).max(1);
    needed.min(8).min(max_split).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_construction_validates() {
        assert!(TileConfig::new(128, 128, 32).is_ok());
        assert!(TileConfig::new(0, 128, 32).is_err());
        assert!(TileConfig::new(128, 128, 0).is_err());
    }

    #[test]
    fn footprints_and_intensity() {
        let t = TileConfig::dense_default();
        assert_eq!(t.accumulator_bytes(), 128 * 128 * 4);
        assert_eq!(t.shared_memory_bytes(2), 2 * (128 * 32 + 32 * 128) * 2);
        assert_eq!(t.flops_per_iteration(), 2 * 128 * 128 * 32);
        // 128x128 square tile: intensity = TM*TN/(TM+TN) = 64 FLOP/byte.
        assert!((t.operation_intensity() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn dense_tile_shrinks_for_small_problems() {
        let t = select_dense_tile(2048, 64, 2048);
        assert_eq!(t.tn, 64);
        assert_eq!(t.tm, 128);
        let t = select_dense_tile(32, 32, 16);
        assert_eq!((t.tm, t.tn, t.tk), (32, 32, 16));
    }

    #[test]
    fn vector_wise_tile_height_is_v() {
        let t = select_vector_wise_tile(64, 512);
        assert_eq!(t.tm, 64);
        assert_eq!(t.tn, 128);
        assert_eq!(t.tk, 16);
        let t = select_vector_wise_tile(32, 8);
        assert_eq!(t.tn, 8);
    }

    #[test]
    fn vector_wise_intensity_grows_with_v() {
        let i32v = select_vector_wise_tile(32, 512).operation_intensity();
        let i128v = select_vector_wise_tile(128, 512).operation_intensity();
        assert!(i128v > i32v);
    }

    #[test]
    fn grid_and_split_k() {
        let tile = TileConfig::dense_default();
        assert_eq!(grid_size(2048, 128, tile, 1), 16);
        assert_eq!(grid_size(2048, 128, tile, 4), 64);
        // Small grid: split-K kicks in to reach the target block count.
        let split = select_split_k(2048, 128, 2048, tile, 128);
        assert!(split > 1 && split <= 8);
        // Large grid: no split needed.
        assert_eq!(select_split_k(8192, 8192, 1024, tile, 128), 1);
        // Split never exceeds the number of K steps.
        assert_eq!(select_split_k(128, 128, 32, tile, 1024), 1);
    }

    #[test]
    fn display_formats_shape() {
        assert_eq!(format!("{}", TileConfig::dense_default()), "128x128x32");
    }
}
