//! Dense row-major matrices.
//!
//! [`DenseMatrix`] is the reference representation every sparse format in this crate
//! converts to and from, the operand type of the simulated kernels in `shfl-kernels`,
//! and the weight container the pruning algorithms in `shfl-pruning` operate on.

use crate::error::{Error, Result};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use std::fmt;

/// A dense, row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Creates a matrix with elements drawn uniformly from `[-1, 1)`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Self {
        let dist = Uniform::new(-1.0f32, 1.0f32);
        let data = (0..rows * cols).map(|_| dist.sample(rng)).collect();
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows` or `col >= cols`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows` or `col >= cols`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Borrow of `num_rows` consecutive rows starting at `start_row` as one
    /// contiguous row-major slice (`num_rows * cols` elements).
    ///
    /// This is the accessor the blocked kernels stage whole row-tiles with:
    /// one bounds check per tile instead of one per element.
    ///
    /// # Panics
    ///
    /// Panics if `start_row + num_rows > rows`.
    #[inline]
    pub fn rows_chunk(&self, start_row: usize, num_rows: usize) -> &[f32] {
        assert!(
            start_row + num_rows <= self.rows,
            "row chunk {start_row}..{} out of bounds for {} rows",
            start_row + num_rows,
            self.rows
        );
        &self.data[start_row * self.cols..(start_row + num_rows) * self.cols]
    }

    /// Mutable borrow of `num_rows` consecutive rows starting at `start_row`.
    ///
    /// # Panics
    ///
    /// Panics if `start_row + num_rows > rows`.
    #[inline]
    pub fn rows_chunk_mut(&mut self, start_row: usize, num_rows: usize) -> &mut [f32] {
        assert!(
            start_row + num_rows <= self.rows,
            "row chunk {start_row}..{} out of bounds for {} rows",
            start_row + num_rows,
            self.rows
        );
        &mut self.data[start_row * self.cols..(start_row + num_rows) * self.cols]
    }

    /// Returns a copy with every element rounded through fp16
    /// ([`crate::f16::round_to_f16_slice`], the branchless whole-slice
    /// conversion, bit-identical to the scalar [`crate::f16::round_to_f16`]).
    ///
    /// The blocked kernels call this once per operand matrix before entering
    /// their main loops, hoisting the (expensive, software) fp16 conversion out
    /// of the per-fragment hot path. Rounding is element-wise, so pre-rounding a
    /// whole matrix is bit-identical to rounding each operand at use time.
    pub fn as_f16_rounded(&self) -> DenseMatrix {
        let mut data = self.data.clone();
        crate::f16::round_to_f16_slice(&mut data);
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Borrow of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Fraction of elements that are non-zero.
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.data.len() as f64
        }
    }

    /// Fraction of elements that are zero (`1 - density`).
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Returns a copy with rows re-ordered so that output row `i` is input row
    /// `permutation[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPermutation`] if `permutation` is not a permutation of
    /// `0..rows`.
    pub fn permuted_rows(&self, permutation: &[usize]) -> Result<DenseMatrix> {
        validate_permutation(permutation, self.rows)?;
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (dst, &src) in permutation.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        Ok(out)
    }

    /// Copy of columns `start .. start + width`, zero-padded on the right to
    /// `padded_cols` columns.
    ///
    /// This is the bucketing primitive of the serving layer: an activation
    /// operand narrower than its plan's N-bucket is widened with zero columns
    /// (which contribute nothing to the real output columns — every output
    /// column depends only on its own activation column), and an operand wider
    /// than the largest bucket is split into consecutive column segments.
    ///
    /// # Panics
    ///
    /// Panics if `start + width > cols` or `width > padded_cols`.
    pub fn cols_padded(&self, start: usize, width: usize, padded_cols: usize) -> DenseMatrix {
        assert!(
            start + width <= self.cols,
            "column slice {start}..{} out of bounds for {} columns",
            start + width,
            self.cols
        );
        assert!(
            width <= padded_cols,
            "cannot pad {width} columns down to {padded_cols}"
        );
        let mut out = DenseMatrix::zeros(self.rows, padded_cols);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols + start..r * self.cols + start + width];
            out.data[r * padded_cols..r * padded_cols + width].copy_from_slice(src);
        }
        out
    }

    /// Writes the first `width` columns of `src` into `self` starting at
    /// column `start` (the inverse of [`DenseMatrix::cols_padded`]: cropping a
    /// padded bucket result back into the assembled output).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ, `start + width > cols`, or
    /// `width > src.cols`.
    pub fn copy_cols_from(&mut self, src: &DenseMatrix, start: usize, width: usize) {
        assert_eq!(self.rows, src.rows, "row count mismatch in copy_cols_from");
        assert!(
            start + width <= self.cols,
            "column range {start}..{} out of bounds for {} columns",
            start + width,
            self.cols
        );
        assert!(
            width <= src.cols,
            "source has {} columns, needs {width}",
            src.cols
        );
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols + start..r * self.cols + start + width];
            dst.copy_from_slice(&src.data[r * src.cols..r * src.cols + width]);
        }
    }

    /// Column-concatenates `parts` into one `rows × Σ cols` matrix (the
    /// cross-request coalescing primitive of the serving scheduler: several
    /// same-layer activation operands become one wide operand served by a
    /// single fused execute, and the outputs are scattered back per part with
    /// [`DenseMatrix::cols_padded`]). An empty `parts` yields a `0 × 0`
    /// matrix; zero-column parts are permitted and contribute nothing.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the parts disagree on the row
    /// count.
    pub fn concat_cols(parts: &[&DenseMatrix]) -> Result<DenseMatrix> {
        let Some(first) = parts.first() else {
            return Ok(DenseMatrix::zeros(0, 0));
        };
        let rows = first.rows;
        if let Some(bad) = parts.iter().find(|p| p.rows != rows) {
            return Err(Error::ShapeMismatch {
                context: format!(
                    "concat_cols parts disagree on rows: {} vs {}",
                    rows, bad.rows
                ),
            });
        }
        let total: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = DenseMatrix::zeros(rows, total);
        let mut start = 0;
        for part in parts {
            out.copy_cols_from(part, start, part.cols);
            start += part.cols;
        }
        Ok(out)
    }

    /// Element-wise absolute values (used as magnitude importance scores).
    pub fn abs(&self) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v.abs()).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|v| f64::from(*v) * f64::from(*v))
            .sum::<f64>()
            .sqrt()
    }

    /// Sum of all elements (as `f64` for accuracy).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|v| f64::from(*v)).sum()
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(Error::ShapeMismatch {
                context: format!(
                    "max_abs_diff between {:?} and {:?}",
                    self.shape(),
                    other.shape()
                ),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Whether every element differs from `other` by at most `tol` (absolute) or
    /// `tol` relative to the larger magnitude, whichever is looser.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the shapes differ.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f32) -> Result<bool> {
        if self.shape() != other.shape() {
            return Err(Error::ShapeMismatch {
                context: format!(
                    "approx_eq between {:?} and {:?}",
                    self.shape(),
                    other.shape()
                ),
            });
        }
        Ok(self.data.iter().zip(other.data.iter()).all(|(a, b)| {
            let diff = (a - b).abs();
            let scale = a.abs().max(b.abs()).max(1.0);
            diff <= tol * scale
        }))
    }

    /// Reference matrix-matrix product `self · rhs` computed in `f64` accumulation.
    /// This is the golden model every simulated kernel is verified against.
    ///
    /// The implementation is blocked over output rows: every row of the result
    /// only depends on one row of `self` and all of `rhs`, so rows are computed
    /// as independent slice-level AXPY sweeps (skipping zero weights, which makes
    /// the reference cheap on pruned matrices) and distributed across cores via
    /// [`crate::parallel::par_chunks_mut`]. The per-element accumulation order is
    /// identical to the historical scalar triple loop, so results are unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.rows {
            return Err(Error::ShapeMismatch {
                context: format!("matmul of {:?} by {:?}", self.shape(), rhs.shape()),
            });
        }
        let n = rhs.cols;
        let mut out = DenseMatrix::zeros(self.rows, n);
        crate::parallel::par_chunks_mut_weighted(&mut out.data, n, self.cols, |i, out_row| {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (p, &a) in a_row.iter().enumerate() {
                let a = f64::from(a);
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = (f64::from(*o) + a * f64::from(b)) as f32;
                }
            }
        });
        Ok(out)
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DenseMatrix {}x{} ({} non-zeros, {:.1}% dense)",
            self.rows,
            self.cols,
            self.nnz(),
            self.density() * 100.0
        )
    }
}

/// Validates that `permutation` is a permutation of `0..len`.
pub(crate) fn validate_permutation(permutation: &[usize], len: usize) -> Result<()> {
    if permutation.len() != len {
        return Err(Error::InvalidPermutation {
            len,
            reason: format!("length is {}", permutation.len()),
        });
    }
    let mut seen = vec![false; len];
    for &p in permutation {
        if p >= len {
            return Err(Error::InvalidPermutation {
                len,
                reason: format!("index {p} out of range"),
            });
        }
        if seen[p] {
            return Err(Error::InvalidPermutation {
                len,
                reason: format!("index {p} appears twice"),
            });
        }
        seen[p] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let m = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        let err = DenseMatrix::from_vec(2, 3, vec![1.0; 5]).unwrap_err();
        assert!(matches!(
            err,
            Error::DimensionMismatch {
                expected: 6,
                actual: 5
            }
        ));
    }

    #[test]
    fn set_and_density() {
        let mut m = DenseMatrix::zeros(4, 4);
        assert_eq!(m.nnz(), 0);
        m.set(0, 0, 5.0);
        m.set(3, 3, -1.0);
        assert_eq!(m.nnz(), 2);
        assert!((m.density() - 2.0 / 16.0).abs() < 1e-12);
        assert!((m.sparsity() - 14.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DenseMatrix::random(&mut rng, 7, 5);
        let tt = m.transposed().transposed();
        assert_eq!(m, tt);
    }

    #[test]
    fn permuted_rows_moves_rows() {
        let m = DenseMatrix::from_fn(4, 2, |r, _| r as f32);
        let p = m.permuted_rows(&[2, 0, 3, 1]).unwrap();
        assert_eq!(p.row(0), &[2.0, 2.0]);
        assert_eq!(p.row(1), &[0.0, 0.0]);
        assert_eq!(p.row(3), &[1.0, 1.0]);
    }

    #[test]
    fn permuted_rows_rejects_invalid() {
        let m = DenseMatrix::zeros(3, 1);
        assert!(m.permuted_rows(&[0, 1]).is_err());
        assert!(m.permuted_rows(&[0, 0, 1]).is_err());
        assert!(m.permuted_rows(&[0, 1, 5]).is_err());
    }

    #[test]
    fn matmul_matches_manual_result() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn approx_eq_and_max_abs_diff() {
        let a = DenseMatrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let mut b = a.clone();
        assert!(a.approx_eq(&b, 1e-6).unwrap());
        b.set(0, 2, 3.5);
        assert!(!a.approx_eq(&b, 1e-3).unwrap());
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-6);
        let c = DenseMatrix::zeros(2, 2);
        assert!(a.approx_eq(&c, 1e-3).is_err());
    }

    #[test]
    fn abs_and_norms() {
        let a = DenseMatrix::from_vec(1, 3, vec![-3.0, 0.0, 4.0]).unwrap();
        assert_eq!(a.abs().as_slice(), &[3.0, 0.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((a.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(42);
        let mut rng2 = StdRng::seed_from_u64(42);
        let a = DenseMatrix::random(&mut rng1, 8, 8);
        let b = DenseMatrix::random(&mut rng2, 8, 8);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn rows_chunk_matches_row_accessor() {
        let m = DenseMatrix::from_fn(6, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(m.rows_chunk(2, 3), &m.as_slice()[8..20]);
        assert_eq!(m.rows_chunk(0, 0), &[] as &[f32]);
        let mut m2 = m.clone();
        m2.rows_chunk_mut(1, 2).iter_mut().for_each(|v| *v = 0.0);
        assert_eq!(m2.row(1), &[0.0; 4]);
        assert_eq!(m2.row(3), m.row(3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rows_chunk_rejects_overflow() {
        DenseMatrix::zeros(3, 2).rows_chunk(2, 2);
    }

    #[test]
    fn as_f16_rounded_matches_elementwise_rounding() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = DenseMatrix::random(&mut rng, 13, 7);
        let rounded = m.as_f16_rounded();
        for r in 0..13 {
            for c in 0..7 {
                assert_eq!(
                    rounded.get(r, c).to_bits(),
                    crate::f16::round_to_f16(m.get(r, c)).to_bits()
                );
            }
        }
        // Idempotent: a pre-rounded matrix re-rounds to itself bit-exactly.
        assert_eq!(rounded.as_f16_rounded(), rounded);
    }

    #[test]
    fn cols_padded_extracts_and_zero_pads() {
        let m = DenseMatrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 + 1.0);
        let s = m.cols_padded(1, 2, 4);
        assert_eq!(s.shape(), (3, 4));
        for r in 0..3 {
            assert_eq!(s.get(r, 0), m.get(r, 1));
            assert_eq!(s.get(r, 1), m.get(r, 2));
            assert_eq!(s.get(r, 2), 0.0);
            assert_eq!(s.get(r, 3), 0.0);
        }
        // Full-width, no padding: a plain copy.
        assert_eq!(m.cols_padded(0, 5, 5), m);
    }

    #[test]
    fn concat_cols_stitches_parts_and_validates_rows() {
        let a = DenseMatrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
        let b = DenseMatrix::from_fn(2, 1, |r, _| 10.0 + r as f32);
        let empty = DenseMatrix::zeros(2, 0);
        let cat = DenseMatrix::concat_cols(&[&a, &empty, &b]).unwrap();
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.row(0), &[0.0, 1.0, 10.0]);
        assert_eq!(cat.row(1), &[2.0, 3.0, 11.0]);
        // Round-trip: each part comes back out via cols_padded.
        assert_eq!(cat.cols_padded(0, 2, 2), a);
        assert_eq!(cat.cols_padded(2, 1, 1), b);
        assert_eq!(DenseMatrix::concat_cols(&[]).unwrap().shape(), (0, 0));
        let bad = DenseMatrix::zeros(3, 1);
        assert!(DenseMatrix::concat_cols(&[&a, &bad]).is_err());
    }

    #[test]
    fn copy_cols_from_roundtrips_with_cols_padded() {
        let m = DenseMatrix::from_fn(4, 7, |r, c| (r * 7 + c) as f32);
        let mut out = DenseMatrix::zeros(4, 7);
        // Reassemble from segments of widths 3 / 2 / 2, each padded to 4.
        for (start, width) in [(0, 3), (3, 2), (5, 2)] {
            let seg = m.cols_padded(start, width, 4);
            out.copy_cols_from(&seg, start, width);
        }
        assert_eq!(out, m);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn cols_padded_rejects_overflow() {
        DenseMatrix::zeros(2, 3).cols_padded(2, 2, 4);
    }

    #[test]
    fn matmul_handles_degenerate_shapes() {
        let a = DenseMatrix::zeros(0, 3);
        let b = DenseMatrix::zeros(3, 4);
        assert_eq!(a.matmul(&b).unwrap().shape(), (0, 4));
        let a = DenseMatrix::zeros(2, 0);
        let b = DenseMatrix::zeros(0, 4);
        assert_eq!(a.matmul(&b).unwrap(), DenseMatrix::zeros(2, 4));
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(3, 0);
        assert_eq!(a.matmul(&b).unwrap().shape(), (2, 0));
    }

    #[test]
    fn display_mentions_shape() {
        let m = DenseMatrix::zeros(3, 4);
        assert!(format!("{m}").contains("3x4"));
    }
}
