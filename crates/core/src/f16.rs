//! Software IEEE 754 binary16 (fp16) rounding.
//!
//! The simulated kernels store operands as `f32` but mimic half-precision
//! inputs by rounding every operand through fp16 on the way into the MMA
//! pipeline. This module owns the conversion so that both the GPU substrate
//! simulator (`gpu-sim`, which re-exports [`round_to_f16`] from its `mma`
//! module) and [`crate::matrix::DenseMatrix::as_f16_rounded`] — the whole-matrix
//! pre-pass the blocked kernels use to hoist rounding out of their inner loops —
//! share one implementation.

/// Rounds an `f32` value through IEEE 754 binary16 and back, mimicking the
/// precision loss of storing kernel operands in fp16.
///
/// Values whose magnitude exceeds the fp16 range saturate to ±65504; subnormals
/// are flushed following round-to-nearest-even semantics of the conversion.
#[inline]
pub fn round_to_f16(value: f32) -> f32 {
    f32::from(half_from_f32(value))
}

/// Rounds every element of `values` through fp16 in place, using the
/// branchless conversion ([`f16_bits_branchless`] / [`f32_bits_branchless`]).
///
/// This is the whole-operand hot path behind
/// [`crate::matrix::DenseMatrix::as_f16_rounded`]: the straight-line,
/// select-based conversion has no data-dependent branches, so the loop
/// auto-vectorises where the branchy scalar [`round_to_f16`] cannot. The
/// property tests assert it is **bit-identical** to the scalar conversion
/// across every `f32` class (NaN payloads, subnormals, ±inf, ±0,
/// round-to-even ties, saturating magnitudes).
pub fn round_to_f16_slice(values: &mut [f32]) {
    for v in values.iter_mut() {
        *v = f32::from_bits(f32_bits_branchless(f16_bits_branchless(v.to_bits())));
    }
}

/// Copies `src` into `dst` rounding every element through fp16 in one pass —
/// the fused copy+round used when staging operands into transform buffers,
/// bit-identical to a copy followed by [`round_to_f16_slice`] but with half
/// the memory traffic.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn round_to_f16_into(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "round_to_f16_into length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = f32::from_bits(f32_bits_branchless(f16_bits_branchless(s.to_bits())));
    }
}

/// All-ones mask when `cond` holds, all-zeros otherwise.
#[inline(always)]
fn mask32(cond: bool) -> u32 {
    (cond as u32).wrapping_neg()
}

/// Bitwise select: `a` where `mask` is set, `b` elsewhere.
#[inline(always)]
fn select32(mask: u32, a: u32, b: u32) -> u32 {
    (a & mask) | (b & !mask)
}

/// Branchless f32-bits → f16-bits conversion with the exact semantics of
/// [`round_to_f16`]'s scalar path: round-to-nearest-even, finite overflow
/// saturating to ±65504, NaNs quieted to `0x7e00`-class payloads, gradual
/// underflow to subnormals, flush to signed zero below half the smallest
/// subnormal. Every case is computed unconditionally and the result is picked
/// with bit masks, so there is no data-dependent control flow.
#[inline(always)]
fn f16_bits_branchless(bits: u32) -> u16 {
    let sign = (bits >> 16) & 0x8000;
    let exp = (bits >> 23) & 0xff;
    let mant = bits & 0x007f_ffff;
    let new_exp = exp as i32 - 127 + 15;

    // Normal path: drop 13 mantissa bits with round-to-nearest-even. The
    // rounding increment is added to the packed (exponent | mantissa) value,
    // so a mantissa carry bumps the exponent for free; carrying into the
    // infinity encoding saturates below.
    let mant10 = mant >> 13;
    let inc = ((mant >> 12) & 1) & (((mant & 0x0fff) != 0) as u32 | (mant10 & 1));
    let normal = (new_exp as u32) << 10 | mant10;
    let normal = normal.wrapping_add(inc);
    let normal = select32(mask32(new_exp >= 0x1f || normal >= 0x7c00), 0x7bff, normal);

    // Subnormal path (`-10 <= new_exp <= 0`): shift the full 24-bit mantissa
    // right by `14 - new_exp` with round-to-nearest-even. The shift is clamped
    // into range so the computation stays defined when another path is
    // selected; values below half the smallest subnormal flush to zero.
    let shift = (14 - new_exp).clamp(1, 24) as u32;
    let full = mant | 0x0080_0000;
    let sub = full >> shift;
    let round_bit = 1u32 << (shift - 1);
    let sub_inc =
        (((full & round_bit) != 0) as u32) & (((full & (round_bit - 1)) != 0) as u32 | (sub & 1));
    let sub = select32(mask32(new_exp < -10), 0, sub.wrapping_add(sub_inc));

    // NaN / Inf path: infinities stay infinite, NaNs are quieted to 0x200.
    let nan_inf = 0x7c00 | select32(mask32(mant != 0), 0x200, 0);

    let finite = select32(mask32(new_exp <= 0), sub, normal);
    let magnitude = select32(mask32(exp == 0xff), nan_inf, finite);
    (sign | magnitude) as u16
}

/// Branchless f16-bits → f32-bits decode matching `From<HalfBits> for f32`.
///
/// The subnormal case is decoded arithmetically: an fp16 subnormal is exactly
/// `mant × 2⁻²⁴`, and both the integer-to-float conversion (`mant ≤ 1023`) and
/// the power-of-two scale are exact in `f32`, so no normalisation loop is
/// needed.
#[inline(always)]
fn f32_bits_branchless(half: u16) -> u32 {
    let bits = half as u32;
    let sign = (bits & 0x8000) << 16;
    let exp = (bits >> 10) & 0x1f;
    let mant = bits & 0x03ff;
    let normal = ((exp + 127 - 15) << 23) | (mant << 13);
    let nan_inf = 0x7f80_0000 | (mant << 13);
    let subnormal = (mant as f32 * (1.0 / (1u32 << 24) as f32)).to_bits();
    let magnitude = select32(
        mask32(exp == 0),
        subnormal,
        select32(mask32(exp == 0x1f), nan_inf, normal),
    );
    sign | magnitude
}

/// Minimal software fp16 conversion (round-to-nearest-even), returning the
/// decoded value as `f32` via the bit pattern.
#[inline]
fn half_from_f32(value: f32) -> HalfBits {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        let mant16 = if mant != 0 { 0x200 } else { 0 };
        return HalfBits(sign | 0x7c00 | mant16);
    }

    // Re-bias from 127 to 15.
    let unbiased = exp - 127;
    let new_exp = unbiased + 15;

    if new_exp >= 0x1f {
        // Overflow: saturate to the largest finite fp16 value rather than infinity,
        // matching the saturating behaviour most DNN frameworks configure.
        return HalfBits(sign | 0x7bff);
    }
    if new_exp <= 0 {
        // Subnormal or underflow to zero.
        if new_exp < -10 {
            return HalfBits(sign);
        }
        let full_mant = mant | 0x0080_0000;
        let shift = (14 - new_exp) as u32;
        let half_mant = full_mant >> shift;
        // Round to nearest even.
        let round_bit = 1u32 << (shift - 1);
        let rounded = if (full_mant & round_bit) != 0
            && ((full_mant & (round_bit - 1)) != 0 || (half_mant & 1) != 0)
        {
            half_mant + 1
        } else {
            half_mant
        };
        return HalfBits(sign | rounded as u16);
    }

    // Normalised result; round mantissa from 23 to 10 bits (nearest even).
    let mant10 = mant >> 13;
    let round_bit = mant & 0x0000_1000;
    let sticky = mant & 0x0000_0fff;
    let mut half = (new_exp as u16) << 10 | mant10 as u16;
    if round_bit != 0 && (sticky != 0 || (half & 1) != 0) {
        half = half.wrapping_add(1);
        if half & 0x7c00 == 0x7c00 {
            // Rounded up into the infinity encoding: saturate.
            half = 0x7bff;
        }
    }
    HalfBits(sign | half)
}

/// Raw fp16 bits produced by [`half_from_f32`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HalfBits(u16);

impl From<HalfBits> for f32 {
    #[inline]
    fn from(h: HalfBits) -> f32 {
        let bits = h.0 as u32;
        let sign = (bits & 0x8000) << 16;
        let exp = (bits >> 10) & 0x1f;
        let mant = bits & 0x03ff;
        let out = if exp == 0 {
            if mant == 0 {
                sign
            } else {
                // Subnormal: normalise.
                let mut exp32 = 127 - 15 - 10;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    exp32 -= 1;
                }
                m &= 0x03ff;
                sign | (((exp32 + 1 + 10) as u32) << 23) | (m << 13)
            }
        } else if exp == 0x1f {
            sign | 0x7f80_0000 | (mant << 13)
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_preserves_representable_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, -0.25, 65504.0] {
            assert_eq!(
                round_to_f16(v),
                v,
                "value {v} should be exactly representable"
            );
        }
    }

    #[test]
    fn rounding_introduces_bounded_error() {
        let v = 0.1f32;
        let r = round_to_f16(v);
        assert!((r - v).abs() < 1e-3);
        // Large values saturate instead of becoming infinite.
        assert!(round_to_f16(1e9).is_finite());
        assert!(round_to_f16(1e9) <= 65504.0);
    }

    #[test]
    fn handles_negative_and_subnormal() {
        let v = -std::f32::consts::PI;
        assert!((round_to_f16(v) - v).abs() < 2e-3);
        let tiny = 1e-6f32;
        let r = round_to_f16(tiny);
        assert!((0.0..1e-5).contains(&r));
    }

    #[test]
    fn rounding_is_idempotent() {
        for i in 0..10_000u32 {
            let v = f32::from_bits(0x3f00_0000 ^ i.wrapping_mul(2_654_435_761));
            if !v.is_finite() {
                continue;
            }
            let once = round_to_f16(v);
            assert_eq!(once.to_bits(), round_to_f16(once).to_bits(), "value {v}");
        }
    }

    #[test]
    fn preserves_zero_signs() {
        assert_eq!(round_to_f16(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(round_to_f16(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    /// Asserts the branchless slice path equals the scalar reference bit for
    /// bit on `value` (NaNs compare by bit pattern, not by value).
    fn assert_branchless_matches_scalar(value: f32) {
        let mut slice = [value];
        round_to_f16_slice(&mut slice);
        assert_eq!(
            slice[0].to_bits(),
            round_to_f16(value).to_bits(),
            "input bits {:#010x} ({value})",
            value.to_bits()
        );
    }

    #[test]
    fn branchless_matches_scalar_on_every_f32_class() {
        for bits in [
            0x0000_0000u32, // +0
            0x8000_0000,    // -0
            0x0000_0001,    // smallest +subnormal
            0x8000_0001,    // smallest -subnormal
            0x007f_ffff,    // largest subnormal
            0x0080_0000,    // smallest normal
            0x3f80_0000,    // 1.0
            0x3f80_0001,    // just above 1.0 (rounds down, sticky only)
            0x3f80_1000,    // exact tie at the half bit (round to even)
            0x3f80_1001,    // tie broken by sticky
            0x3f80_3000,    // tie with odd mantissa (rounds up)
            0x477f_efff,    // just below 65504
            0x477f_f000,    // 65504 + tie (rounds into saturation)
            0x477f_f001,    // above 65504 (saturates)
            0x7f7f_ffff,    // f32::MAX (saturates)
            0x3380_0000,    // 2^-24 exactly (tie at smallest f16 subnormal)
            0x337f_ffff,    // just below half the smallest subnormal
            0x3380_0001,    // just above it (rounds to smallest subnormal)
            0x3300_0000,    // 2^-25 (flushes to zero)
            0x387f_c000,    // largest f16 subnormal neighbourhood
            0x3880_0000,    // smallest f16 normal (2^-14)
            0x7f80_0000,    // +inf
            0xff80_0000,    // -inf
            0x7fc0_0000,    // quiet NaN
            0x7f80_0001,    // signalling NaN (smallest payload)
            0xffff_ffff,    // -NaN with full payload
            0x7faa_aaaa,    // NaN with arbitrary payload
        ] {
            assert_branchless_matches_scalar(f32::from_bits(bits));
        }
    }

    #[test]
    fn branchless_matches_scalar_exhaustively_around_exponent_boundaries() {
        // Every (exponent, low-mantissa) combination, both signs: covers the
        // normal/subnormal/flush/saturate/NaN boundaries of the converter.
        for exp in 0..=0xffu32 {
            for low in 0..64u32 {
                for sign in [0u32, 0x8000_0000] {
                    assert_branchless_matches_scalar(f32::from_bits(
                        sign | (exp << 23) | (low * 0x0003_ffff),
                    ));
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4096))]

        #[test]
        fn branchless_slice_is_bit_identical_to_scalar(bits in any::<u32>()) {
            assert_branchless_matches_scalar(f32::from_bits(bits));
        }
    }

    #[test]
    fn slice_rounding_covers_whole_slices() {
        let mut values: Vec<f32> = (0..1027u32)
            .map(|i| f32::from_bits(i.wrapping_mul(2_654_435_761)))
            .collect();
        let expected: Vec<u32> = values.iter().map(|v| round_to_f16(*v).to_bits()).collect();
        round_to_f16_slice(&mut values);
        let got: Vec<u32> = values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, expected);
    }
}
