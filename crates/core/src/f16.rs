//! Software IEEE 754 binary16 (fp16) rounding.
//!
//! The simulated kernels store operands as `f32` but mimic half-precision
//! inputs by rounding every operand through fp16 on the way into the MMA
//! pipeline. This module owns the conversion so that both the GPU substrate
//! simulator (`gpu-sim`, which re-exports [`round_to_f16`] from its `mma`
//! module) and [`crate::matrix::DenseMatrix::as_f16_rounded`] — the whole-matrix
//! pre-pass the blocked kernels use to hoist rounding out of their inner loops —
//! share one implementation.

/// Rounds an `f32` value through IEEE 754 binary16 and back, mimicking the
/// precision loss of storing kernel operands in fp16.
///
/// Values whose magnitude exceeds the fp16 range saturate to ±65504; subnormals
/// are flushed following round-to-nearest-even semantics of the conversion.
#[inline]
pub fn round_to_f16(value: f32) -> f32 {
    f32::from(half_from_f32(value))
}

/// Minimal software fp16 conversion (round-to-nearest-even), returning the
/// decoded value as `f32` via the bit pattern.
#[inline]
fn half_from_f32(value: f32) -> HalfBits {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        let mant16 = if mant != 0 { 0x200 } else { 0 };
        return HalfBits(sign | 0x7c00 | mant16);
    }

    // Re-bias from 127 to 15.
    let unbiased = exp - 127;
    let new_exp = unbiased + 15;

    if new_exp >= 0x1f {
        // Overflow: saturate to the largest finite fp16 value rather than infinity,
        // matching the saturating behaviour most DNN frameworks configure.
        return HalfBits(sign | 0x7bff);
    }
    if new_exp <= 0 {
        // Subnormal or underflow to zero.
        if new_exp < -10 {
            return HalfBits(sign);
        }
        let full_mant = mant | 0x0080_0000;
        let shift = (14 - new_exp) as u32;
        let half_mant = full_mant >> shift;
        // Round to nearest even.
        let round_bit = 1u32 << (shift - 1);
        let rounded = if (full_mant & round_bit) != 0
            && ((full_mant & (round_bit - 1)) != 0 || (half_mant & 1) != 0)
        {
            half_mant + 1
        } else {
            half_mant
        };
        return HalfBits(sign | rounded as u16);
    }

    // Normalised result; round mantissa from 23 to 10 bits (nearest even).
    let mant10 = mant >> 13;
    let round_bit = mant & 0x0000_1000;
    let sticky = mant & 0x0000_0fff;
    let mut half = (new_exp as u16) << 10 | mant10 as u16;
    if round_bit != 0 && (sticky != 0 || (half & 1) != 0) {
        half = half.wrapping_add(1);
        if half & 0x7c00 == 0x7c00 {
            // Rounded up into the infinity encoding: saturate.
            half = 0x7bff;
        }
    }
    HalfBits(sign | half)
}

/// Raw fp16 bits produced by [`half_from_f32`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HalfBits(u16);

impl From<HalfBits> for f32 {
    #[inline]
    fn from(h: HalfBits) -> f32 {
        let bits = h.0 as u32;
        let sign = (bits & 0x8000) << 16;
        let exp = (bits >> 10) & 0x1f;
        let mant = bits & 0x03ff;
        let out = if exp == 0 {
            if mant == 0 {
                sign
            } else {
                // Subnormal: normalise.
                let mut exp32 = 127 - 15 - 10;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    exp32 -= 1;
                }
                m &= 0x03ff;
                sign | (((exp32 + 1 + 10) as u32) << 23) | (m << 13)
            }
        } else if exp == 0x1f {
            sign | 0x7f80_0000 | (mant << 13)
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_representable_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, -0.25, 65504.0] {
            assert_eq!(
                round_to_f16(v),
                v,
                "value {v} should be exactly representable"
            );
        }
    }

    #[test]
    fn rounding_introduces_bounded_error() {
        let v = 0.1f32;
        let r = round_to_f16(v);
        assert!((r - v).abs() < 1e-3);
        // Large values saturate instead of becoming infinite.
        assert!(round_to_f16(1e9).is_finite());
        assert!(round_to_f16(1e9) <= 65504.0);
    }

    #[test]
    fn handles_negative_and_subnormal() {
        let v = -std::f32::consts::PI;
        assert!((round_to_f16(v) - v).abs() < 2e-3);
        let tiny = 1e-6f32;
        let r = round_to_f16(tiny);
        assert!((0.0..1e-5).contains(&r));
    }

    #[test]
    fn rounding_is_idempotent() {
        for i in 0..10_000u32 {
            let v = f32::from_bits(0x3f00_0000 ^ i.wrapping_mul(2_654_435_761));
            if !v.is_finite() {
                continue;
            }
            let once = round_to_f16(v);
            assert_eq!(once.to_bits(), round_to_f16(once).to_bits(), "value {v}");
        }
    }

    #[test]
    fn preserves_zero_signs() {
        assert_eq!(round_to_f16(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(round_to_f16(-0.0).to_bits(), (-0.0f32).to_bits());
    }
}
