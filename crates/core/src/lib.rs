//! # shfl-core — data structures for the Shfl-BW reproduction
//!
//! This crate implements the data-structure side of *"Shfl-BW: Accelerating Deep
//! Neural Network Inference with Tensor-Core Aware Weight Pruning"* (DAC 2022):
//!
//! * [`matrix::DenseMatrix`] and [`mask::BinaryMask`] — the dense weight matrices the
//!   pruning algorithms operate on and the keep/prune masks they produce,
//! * [`pattern::SparsePattern`] — the five sparsity-pattern families the paper
//!   compares (unstructured, block-wise, vector-wise, balanced N:M and Shfl-BW), with
//!   structural validators for each,
//! * [`formats`] — one lossless compressed format per pattern, including the paper's
//!   [`formats::ShflBwMatrix`] (vector-wise storage in shuffled row order plus the
//!   original row indices used by the reordered write-back),
//! * [`analysis`] — the §3.2 flexibility (candidate counting) and computation
//!   efficiency (operation intensity / data reuse) analysis,
//! * [`packed`] — [`packed::PackedPanels`], the one-time fp16-rounded,
//!   tile-transposed weight packing consumed by the prepared kernel plans in
//!   `shfl-kernels` (the plan/execute split's static operand),
//! * [`tiling`] — threadblock tile configurations shared with the simulated kernels,
//! * [`f16`] — the software fp16 rounding shared by the MMA model and the
//!   [`matrix::DenseMatrix::as_f16_rounded`] whole-matrix pre-pass,
//! * [`parallel`] — the fork-join chunk helper the blocked kernels use to spread
//!   output row-tiles across cores (gated on the default `parallel` feature).
//!
//! ## Example: compress a Shfl-BW matrix and inspect its structure
//!
//! ```
//! use shfl_core::matrix::DenseMatrix;
//! use shfl_core::formats::ShflBwMatrix;
//!
//! # fn main() -> Result<(), shfl_core::error::Error> {
//! // Rows 0/2 share one column pattern, rows 1/3 another — a Shfl-BW structure with
//! // V = 2 even though equal rows are not adjacent.
//! let dense = DenseMatrix::from_fn(4, 6, |r, c| {
//!     let keep = if r % 2 == 0 { c == 0 || c == 3 } else { c == 1 || c == 5 };
//!     if keep { 1.0 + (r * 6 + c) as f32 } else { 0.0 }
//! });
//! let shfl = ShflBwMatrix::from_dense(&dense, 2)?;
//! assert_eq!(shfl.num_groups(), 2);
//! assert_eq!(shfl.to_dense(), dense);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod analysis;
pub mod bucket;
pub mod error;
pub mod f16;
pub mod formats;
pub mod mask;
pub mod matrix;
pub mod packed;
pub mod parallel;
pub mod pattern;
pub mod slo;
pub mod tiling;

pub use bucket::{BucketPolicy, Segment};
pub use error::{Error, Result};
pub use formats::{BalancedMatrix, BlockSparseMatrix, CsrMatrix, ShflBwMatrix, VectorWiseMatrix};
pub use mask::BinaryMask;
pub use matrix::DenseMatrix;
pub use packed::PackedPanels;
pub use pattern::SparsePattern;
pub use slo::{SloClass, SloKind};
pub use tiling::TileConfig;

/// Commonly used items, re-exported for glob import in examples and tests.
pub mod prelude {
    pub use crate::analysis::{compare_patterns, ln_candidate_structures, max_reuse};
    pub use crate::bucket::{BucketPolicy, Segment};
    pub use crate::error::{Error, Result};
    pub use crate::formats::{
        BalancedMatrix, BlockSparseMatrix, CsrMatrix, ShflBwMatrix, VectorWiseMatrix,
    };
    pub use crate::mask::BinaryMask;
    pub use crate::matrix::DenseMatrix;
    pub use crate::packed::PackedPanels;
    pub use crate::pattern::SparsePattern;
    pub use crate::slo::{SloClass, SloKind};
    pub use crate::tiling::TileConfig;
}
