//! Pre-packed weight panels — the static operand of the plan/execute split.
//!
//! Real sparse inference engines reorganise the weight matrix **once**, offline,
//! and amortise that work across every inference call (EIE's compressed weight
//! layout, NVIDIA's pre-transformed 2:4 metadata). [`PackedPanels`] is that
//! one-time product for the simulated kernels in `shfl-kernels`: the weight
//! operand is rounded through fp16, transposed into the exact tile layout the
//! blocked fragment engine stages per call, and laid out contiguously in
//! execution order. A prepared kernel plan then walks the panels with zero
//! per-call gathering, transposition or rounding of the static operand.
//!
//! Three packings cover every kernel family:
//!
//! * [`PackedPanels::pack_dense_rows`] — dense row-panels for the tensor-core
//!   GEMM (and conv im2col weights): per output row-tile, per reduction slice,
//!   the `rows × kk` A-fragment the blocked engine would stage.
//! * [`PackedPanels::pack_vector_wise`] — pre-stitched `V × tk` group panels
//!   for the vector-wise / Shfl-BW / balanced-style stitched kernels: the
//!   transposed weight tile of every `T_K` step of every row group.
//! * [`PackedPanels::pack_blocks`] — the rounded `V × V` tiles of a block-wise
//!   (BSR) matrix in block-row order.
//!
//! Rounding is element-wise ([`crate::f16::round_to_f16`]), so packing ahead of
//! time is bit-identical to rounding each element at stage time — the contract
//! the property tests in `shfl-kernels` assert.

use crate::f16::round_to_f16;
use crate::formats::{BlockSparseMatrix, VectorWiseMatrix};
use crate::matrix::DenseMatrix;

/// Weight panels packed contiguously in execution order.
///
/// A *panel* is one staged operand fragment (`rows × kk`, row-major,
/// fp16-rounded). Panels are grouped into *chunks* — the outer unit of work a
/// kernel distributes across cores (an output row-tile for GEMM, a row group
/// for the stitched SpMM kernels, a block row for BSR).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedPanels {
    /// Nominal tile height (`fm` for dense packings, `V` for group packings).
    panel_rows: usize,
    /// All panel values, fp16-rounded, concatenated in execution order.
    data: Vec<f32>,
    /// `panel_ptr[i]..panel_ptr[i+1]` bounds panel `i` inside `data`.
    panel_ptr: Vec<usize>,
    /// `(rows, kk)` of each panel.
    panel_dims: Vec<(u32, u32)>,
    /// `chunk_ptr[c]..chunk_ptr[c+1]` is the panel index range of chunk `c`.
    chunk_ptr: Vec<usize>,
}

impl PackedPanels {
    /// Packs a dense weight matrix into row-panels: per row-tile of
    /// `tile_rows` rows, per reduction slice of `tile_k` columns, one
    /// `rows × kk` fragment (shortened at the boundary, exactly like the
    /// blocked engine's staging).
    ///
    /// # Panics
    ///
    /// Panics if `tile_rows` or `tile_k` is zero.
    pub fn pack_dense_rows(weights: &DenseMatrix, tile_rows: usize, tile_k: usize) -> Self {
        assert!(
            tile_rows > 0 && tile_k > 0,
            "tile dimensions must be non-zero"
        );
        let (m, k) = weights.shape();
        let mut packed = PackedPanels::with_panel_rows(tile_rows);
        packed.data.reserve(m * k);
        for i0 in (0..m).step_by(tile_rows) {
            let rows = tile_rows.min(m - i0);
            // A row-tile with k == 0 still forms an (empty) chunk so chunk
            // indices line up with output row-tiles.
            for p0 in (0..k).step_by(tile_k) {
                let kk = tile_k.min(k - p0);
                for i in 0..rows {
                    let row = weights.row(i0 + i);
                    packed
                        .data
                        .extend(row[p0..p0 + kk].iter().map(|v| round_to_f16(*v)));
                }
                packed.push_panel(rows, kk);
            }
            packed.chunk_ptr.push(packed.panel_ptr.len() - 1);
        }
        packed
    }

    /// Packs a vector-wise matrix into pre-stitched group panels: per row
    /// group, per `tk`-wide step over the group's kept columns, the transposed
    /// `V × w` weight tile the stitched kernel builds in shared memory —
    /// resolved here once instead of on every call.
    ///
    /// # Panics
    ///
    /// Panics if `tk` is zero.
    pub fn pack_vector_wise(weights: &VectorWiseMatrix, tk: usize) -> Self {
        assert!(tk > 0, "tk must be non-zero");
        let v = weights.vector_size();
        let mut packed = PackedPanels::with_panel_rows(v);
        packed.data.reserve(weights.stored_values());
        for g in 0..weights.num_groups() {
            let cols = weights.group_cols(g);
            for step_start in (0..cols.len()).step_by(tk) {
                let w = tk.min(cols.len() - step_start);
                let base = packed.data.len();
                packed.data.resize(base + v * w, 0.0);
                // Transpose the w stored vectors into the dense V×w tile.
                for j in 0..w {
                    let vals = weights.vector_values(g, step_start + j);
                    for (r, &val) in vals.iter().enumerate() {
                        packed.data[base + r * w + j] = round_to_f16(val);
                    }
                }
                packed.push_panel(v, w);
            }
            packed.chunk_ptr.push(packed.panel_ptr.len() - 1);
        }
        packed
    }

    /// Rewrites the panel payload in place from a same-pattern magnitude
    /// update of the matrix this packing was built from — the delta re-pack
    /// path for live weight updates.
    ///
    /// The Shfl-BW group/block structure (vector size, group boundaries, kept
    /// columns) is stable under a magnitude-only update, so every panel keeps
    /// its offset and dimensions and only the fp16-rounded values change.
    /// Replays the exact [`PackedPanels::pack_vector_wise`] traversal with the
    /// same `tk`, writing into the existing buffer: the result is bit-identical
    /// to a fresh pack, but no metadata (panel pointers, dims, chunk pointers)
    /// is rebuilt or moved.
    ///
    /// Returns the number of payload bytes rewritten (the full value buffer),
    /// which callers charge against a `TrafficCounter` to compare with the
    /// bytes a full rebuild would move.
    ///
    /// # Panics
    ///
    /// Panics if `tk` is zero or if the update's structure does not match this
    /// packing (different vector size, group count, or step layout) — callers
    /// must gate on a same-pattern check first.
    pub fn repack_vector_wise_values(&mut self, weights: &VectorWiseMatrix, tk: usize) -> usize {
        assert!(tk > 0, "tk must be non-zero");
        let v = weights.vector_size();
        assert_eq!(
            self.panel_rows, v,
            "delta re-pack requires the original vector size"
        );
        assert_eq!(
            self.num_chunks(),
            weights.num_groups(),
            "delta re-pack requires the original group structure"
        );
        let mut panel = 0;
        for g in 0..weights.num_groups() {
            let cols = weights.group_cols(g);
            for step_start in (0..cols.len()).step_by(tk) {
                let w = tk.min(cols.len() - step_start);
                assert_eq!(
                    self.panel_dims[panel],
                    (v as u32, w as u32),
                    "delta re-pack requires the original panel layout"
                );
                let base = self.panel_ptr[panel];
                for j in 0..w {
                    let vals = weights.vector_values(g, step_start + j);
                    for (r, &val) in vals.iter().enumerate() {
                        self.data[base + r * w + j] = round_to_f16(val);
                    }
                }
                panel += 1;
            }
            assert_eq!(
                self.chunk_ptr[g + 1],
                panel,
                "delta re-pack requires the original chunk layout"
            );
        }
        assert_eq!(panel, self.num_panels(), "update left panels unwritten");
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Packs a block-sparse (BSR) matrix: one rounded `V × V` panel per stored
    /// block, chunked by block row.
    pub fn pack_blocks(weights: &BlockSparseMatrix) -> Self {
        let v = weights.block_size();
        let mut packed = PackedPanels::with_panel_rows(v);
        packed.data.reserve(weights.stored_values());
        for br in 0..weights.block_rows() {
            for i in 0..weights.blocks_in_row(br).len() {
                packed
                    .data
                    .extend(weights.block_values(br, i).iter().map(|v| round_to_f16(*v)));
                packed.push_panel(v, v);
            }
            packed.chunk_ptr.push(packed.panel_ptr.len() - 1);
        }
        packed
    }

    /// Pads every panel narrower than `tk` reduction columns out to exactly
    /// `tk`, in place, with zero-valued weight columns — the *k-padding to
    /// tile targets* of the implicit-GEMM conv plans, which want every panel
    /// step at the full tile depth so one tap-offset table stride covers the
    /// whole sweep. Returns the number of panels that were widened.
    ///
    /// Padding with **zero weights is bit-identical** to stopping the sweep
    /// at the original `kk`, provided the caller points the padded taps at
    /// any in-bounds, finite operand values (offset 0 is conventional): the
    /// fused kernels reduce each output partial from `+0.0` in ascending
    /// `k`, a `+0.0` weight times any finite operand is `±0.0`, and adding
    /// `±0.0` to the running partial never changes its bits — the partial
    /// can never itself be `-0.0` (it starts at `+0.0`, and IEEE-754
    /// round-to-nearest-even exact cancellation yields `+0.0`), and
    /// `x + ±0.0 == x` bitwise for every other value.
    ///
    /// Panel indices, chunk boundaries and panel row counts are unchanged;
    /// only the padded panels' `kk` (and the value buffer layout) change.
    ///
    /// # Panics
    ///
    /// Panics if `tk` is zero.
    pub fn pad_panels_to(&mut self, tk: usize) -> usize {
        assert!(tk > 0, "tk must be non-zero");
        if self.panel_dims.iter().all(|&(_, kk)| kk as usize >= tk) {
            return 0;
        }
        let mut data = Vec::with_capacity(
            self.panel_dims
                .iter()
                .map(|&(rows, kk)| rows as usize * (kk as usize).max(tk))
                .sum(),
        );
        let mut panel_ptr = Vec::with_capacity(self.panel_ptr.len());
        panel_ptr.push(0);
        let mut panel_dims = Vec::with_capacity(self.panel_dims.len());
        let mut widened = 0;
        for panel in 0..self.num_panels() {
            let (values, rows, kk) = self.panel(panel);
            if kk >= tk {
                data.extend_from_slice(values);
                panel_dims.push((rows as u32, kk as u32));
            } else {
                let base = data.len();
                data.resize(base + rows * tk, 0.0);
                for r in 0..rows {
                    data[base + r * tk..base + r * tk + kk]
                        .copy_from_slice(&values[r * kk..(r + 1) * kk]);
                }
                panel_dims.push((rows as u32, tk as u32));
                widened += 1;
            }
            panel_ptr.push(data.len());
        }
        self.data = data;
        self.panel_ptr = panel_ptr;
        self.panel_dims = panel_dims;
        widened
    }

    fn with_panel_rows(panel_rows: usize) -> Self {
        PackedPanels {
            panel_rows,
            data: Vec::new(),
            panel_ptr: vec![0],
            panel_dims: Vec::new(),
            chunk_ptr: vec![0],
        }
    }

    fn push_panel(&mut self, rows: usize, kk: usize) {
        self.panel_ptr.push(self.data.len());
        self.panel_dims.push((rows as u32, kk as u32));
    }

    /// Nominal tile height the panels were packed for.
    pub fn panel_rows(&self) -> usize {
        self.panel_rows
    }

    /// Number of outer chunks (row-tiles / groups / block rows).
    pub fn num_chunks(&self) -> usize {
        self.chunk_ptr.len() - 1
    }

    /// Total number of panels.
    pub fn num_panels(&self) -> usize {
        self.panel_dims.len()
    }

    /// Panel index range belonging to one chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk >= num_chunks`.
    pub fn chunk_panels(&self, chunk: usize) -> std::ops::Range<usize> {
        assert!(chunk < self.num_chunks(), "chunk index out of bounds");
        self.chunk_ptr[chunk]..self.chunk_ptr[chunk + 1]
    }

    /// One packed panel: `(values, rows, kk)` with `values.len() == rows * kk`,
    /// row-major.
    ///
    /// # Panics
    ///
    /// Panics if `panel >= num_panels`.
    pub fn panel(&self, panel: usize) -> (&[f32], usize, usize) {
        assert!(panel < self.num_panels(), "panel index out of bounds");
        let (rows, kk) = self.panel_dims[panel];
        (
            &self.data[self.panel_ptr[panel]..self.panel_ptr[panel + 1]],
            rows as usize,
            kk as usize,
        )
    }

    /// Total packed values.
    pub fn packed_values(&self) -> usize {
        self.data.len()
    }

    /// Size of the packed representation in bytes (values as `f32` plus panel
    /// and chunk metadata).
    pub fn packed_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
            + self.panel_ptr.len() * std::mem::size_of::<usize>()
            + self.panel_dims.len() * std::mem::size_of::<(u32, u32)>()
            + self.chunk_ptr.len() * std::mem::size_of::<usize>()
    }

    /// Whether the packing holds no values at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dense_rows_match_staged_fragments() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = DenseMatrix::random(&mut rng, 37, 29);
        let a16 = a.as_f16_rounded();
        let (fm, fk) = (16, 16);
        let packed = PackedPanels::pack_dense_rows(&a, fm, fk);
        assert_eq!(packed.num_chunks(), 37usize.div_ceil(fm));
        let mut panel_idx = 0;
        for (tile, i0) in (0..37).step_by(fm).enumerate() {
            let rows = fm.min(37 - i0);
            let range = packed.chunk_panels(tile);
            assert_eq!(range.len(), 29usize.div_ceil(fk));
            for p0 in (0..29).step_by(fk) {
                let kk = fk.min(29 - p0);
                let (values, prows, pkk) = packed.panel(panel_idx);
                assert_eq!((prows, pkk), (rows, kk));
                for i in 0..rows {
                    assert_eq!(
                        &values[i * kk..(i + 1) * kk],
                        &a16.row(i0 + i)[p0..p0 + kk],
                        "tile {tile} slice at {p0}"
                    );
                }
                panel_idx += 1;
            }
        }
        assert_eq!(packed.packed_values(), 37 * 29);
    }

    #[test]
    fn vector_wise_panels_are_transposed_rounded_tiles() {
        let mut rng = StdRng::seed_from_u64(2);
        let dense = DenseMatrix::from_fn(16, 24, |r, c| {
            if (c + r / 4) % 3 == 0 {
                rng.gen_range(-1.0f32..1.0)
            } else {
                0.0
            }
        });
        let vw = VectorWiseMatrix::from_dense(&dense, 4).unwrap();
        let tk = 3;
        let packed = PackedPanels::pack_vector_wise(&vw, tk);
        assert_eq!(packed.num_chunks(), vw.num_groups());
        for g in 0..vw.num_groups() {
            let cols = vw.group_cols(g);
            let range = packed.chunk_panels(g);
            assert_eq!(range.len(), cols.len().div_ceil(tk));
            for (step, panel) in range.enumerate() {
                let step_start = step * tk;
                let w = tk.min(cols.len() - step_start);
                let (values, rows, kk) = packed.panel(panel);
                assert_eq!((rows, kk), (4, w));
                for j in 0..w {
                    let vals = vw.vector_values(g, step_start + j);
                    for (r, &val) in vals.iter().enumerate() {
                        assert_eq!(
                            values[r * w + j].to_bits(),
                            round_to_f16(val).to_bits(),
                            "group {g} step {step}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn k_padding_widens_short_panels_with_zero_columns_only() {
        let mut rng = StdRng::seed_from_u64(7);
        let dense = DenseMatrix::from_fn(12, 22, |r, c| {
            if (c + r / 4) % 3 == 0 {
                rng.gen_range(-1.0f32..1.0)
            } else {
                0.0
            }
        });
        let vw = VectorWiseMatrix::from_dense(&dense, 4).unwrap();
        let tk = 16;
        let original = PackedPanels::pack_vector_wise(&vw, tk);
        let mut padded = original.clone();
        let widened = padded.pad_panels_to(tk);
        assert!(
            widened > 0,
            "a 22-col pattern must leave a short tail panel"
        );
        assert_eq!(padded.num_panels(), original.num_panels());
        assert_eq!(padded.num_chunks(), original.num_chunks());
        for panel in 0..original.num_panels() {
            let (orig_values, orig_rows, orig_kk) = original.panel(panel);
            let (pad_values, pad_rows, pad_kk) = padded.panel(panel);
            assert_eq!(pad_rows, orig_rows);
            assert_eq!(pad_kk, tk, "every panel must reach the tile depth");
            for r in 0..orig_rows {
                // Original columns preserved bit-for-bit, tail exactly +0.0.
                assert_eq!(
                    &pad_values[r * pad_kk..r * pad_kk + orig_kk],
                    &orig_values[r * orig_kk..(r + 1) * orig_kk]
                );
                for &pad in &pad_values[r * pad_kk + orig_kk..(r + 1) * pad_kk] {
                    assert_eq!(pad.to_bits(), 0.0f32.to_bits());
                }
            }
        }
        // Idempotent once everything is at depth.
        assert_eq!(padded.pad_panels_to(tk), 0);
    }

    #[test]
    fn delta_repack_is_bit_identical_to_a_fresh_pack() {
        let mut rng = StdRng::seed_from_u64(5);
        let dense = DenseMatrix::from_fn(16, 24, |r, c| {
            if (c + r / 4) % 3 == 0 {
                rng.gen_range(-1.0f32..1.0)
            } else {
                0.0
            }
        });
        let vw = VectorWiseMatrix::from_dense(&dense, 4).unwrap();
        let tk = 3;
        let mut packed = PackedPanels::pack_vector_wise(&vw, tk);
        // Same pattern, new magnitudes: scale the stored values only.
        let scaled = VectorWiseMatrix::from_parts(
            vw.rows(),
            vw.cols(),
            vw.vector_size(),
            vw.group_ptr().to_vec(),
            vw.col_idx().to_vec(),
            vw.values().iter().map(|v| v * 1.25).collect(),
        )
        .unwrap();
        let bytes = packed.repack_vector_wise_values(&scaled, tk);
        assert_eq!(bytes, packed.packed_values() * 4);
        let fresh = PackedPanels::pack_vector_wise(&scaled, tk);
        assert_eq!(packed, fresh, "delta re-pack must equal a fresh pack");
        // Payload-only bytes are strictly below a full rebuild's footprint.
        assert!(bytes < fresh.packed_bytes());
    }

    #[test]
    #[should_panic(expected = "delta re-pack requires the original")]
    fn delta_repack_rejects_a_different_pattern() {
        let dense = DenseMatrix::from_fn(8, 8, |_, c| if c % 2 == 0 { 1.0 } else { 0.0 });
        let vw = VectorWiseMatrix::from_dense(&dense, 4).unwrap();
        let mut packed = PackedPanels::pack_vector_wise(&vw, 2);
        let other = DenseMatrix::from_fn(8, 8, |_, c| if c % 4 == 0 { 1.0 } else { 0.0 });
        let other = VectorWiseMatrix::from_dense(&other, 4).unwrap();
        packed.repack_vector_wise_values(&other, 2);
    }

    #[test]
    fn blocks_round_each_stored_block() {
        let dense = DenseMatrix::from_fn(8, 8, |r, c| {
            if (r / 4 + c / 4) % 2 == 0 {
                0.1 + (r * 8 + c) as f32 * 0.01
            } else {
                0.0
            }
        });
        let bsr = BlockSparseMatrix::from_dense(&dense, 4).unwrap();
        let packed = PackedPanels::pack_blocks(&bsr);
        assert_eq!(packed.num_chunks(), bsr.block_rows());
        assert_eq!(packed.num_panels(), bsr.stored_blocks());
        for br in 0..bsr.block_rows() {
            for (i, panel) in packed.chunk_panels(br).enumerate() {
                let (values, rows, kk) = packed.panel(panel);
                assert_eq!((rows, kk), (4, 4));
                for (packed_v, orig) in values.iter().zip(bsr.block_values(br, i)) {
                    assert_eq!(packed_v.to_bits(), round_to_f16(*orig).to_bits());
                }
            }
        }
    }

    #[test]
    fn empty_matrices_pack_to_empty_chunks() {
        let packed = PackedPanels::pack_dense_rows(&DenseMatrix::zeros(0, 8), 16, 16);
        assert_eq!(packed.num_chunks(), 0);
        assert!(packed.is_empty());
        // Zero columns: chunks exist (one per row-tile) but hold no panels.
        let packed = PackedPanels::pack_dense_rows(&DenseMatrix::zeros(8, 0), 4, 4);
        assert_eq!(packed.num_chunks(), 2);
        assert_eq!(packed.num_panels(), 0);
        let vw = VectorWiseMatrix::from_dense(&DenseMatrix::zeros(8, 8), 4).unwrap();
        let packed = PackedPanels::pack_vector_wise(&vw, 16);
        assert_eq!(packed.num_chunks(), 2);
        assert_eq!(packed.num_panels(), 0);
        assert_eq!(packed.chunk_panels(0), 0..0);
    }

    #[test]
    fn packed_bytes_accounts_for_values_and_metadata() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = DenseMatrix::random(&mut rng, 32, 32);
        let packed = PackedPanels::pack_dense_rows(&a, 16, 16);
        assert!(packed.packed_bytes() >= 32 * 32 * 4);
        assert_eq!(packed.panel_rows(), 16);
    }
}
