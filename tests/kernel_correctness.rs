//! Property-based cross-crate tests: every sparse kernel agrees with the dense
//! reference GEMM on randomly structured inputs, across architectures.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shfl_bw_repro::prelude::*;
use shfl_core::formats::{BlockSparseMatrix, CsrMatrix, VectorWiseMatrix};
use shfl_kernels::spmm::{
    block_wise_spmm_execute, cuda_core_spmm_execute, shfl_bw_spmm_execute, vector_wise_spmm_execute,
};

/// Generates a random vector-wise-structured weight matrix, activation matrix and the
/// vector size, from a compact parameter tuple.
fn spmm_case() -> impl Strategy<Value = (DenseMatrix, DenseMatrix, usize, u64)> {
    (1usize..4, 1usize..4, 1usize..3, 0.05f64..0.6, any::<u64>()).prop_map(
        |(mg, kg, ng, density, seed)| {
            let v = 8;
            let (m, k, n) = (mg * 2 * v, kg * 32, ng * 16);
            let mut rng = StdRng::seed_from_u64(seed);
            let groups = m / v;
            let keep: Vec<Vec<bool>> = (0..groups)
                .map(|_| (0..k).map(|_| rng.gen_bool(density)).collect())
                .collect();
            let weights = DenseMatrix::from_fn(m, k, |r, c| {
                if keep[r / v][c] {
                    rng.gen_range(-1.0f32..1.0)
                } else {
                    0.0
                }
            });
            let activations = DenseMatrix::from_fn(k, n, |_, _| rng.gen_range(-1.0f32..1.0));
            (weights, activations, v, seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_spmm_kernels_match_the_reference((weights, activations, v, seed) in spmm_case()) {
        let reference = weights.matmul(&activations).unwrap();
        let arch = match seed % 3 {
            0 => GpuArch::v100(),
            1 => GpuArch::t4(),
            _ => GpuArch::a100(),
        };
        let n = activations.cols();
        let _ = n;

        // CUDA-core CSR kernel.
        let csr = CsrMatrix::from_dense(&weights);
        let out = cuda_core_spmm_execute(&arch, &csr, &activations).unwrap();
        prop_assert!(out.output.approx_eq(&reference, 1e-2).unwrap());

        // Vector-wise tensor-core kernel.
        let vw = VectorWiseMatrix::from_dense(&weights, v).unwrap();
        let out = vector_wise_spmm_execute(&arch, &vw, &activations).unwrap();
        prop_assert!(out.output.approx_eq(&reference, 3e-2).unwrap());

        // Shfl-BW kernel with a non-trivial permutation (reverse order).
        let perm: Vec<usize> = (0..weights.rows()).rev().collect();
        let shfl = ShflBwMatrix::from_dense_with_permutation(&weights, &perm, v).unwrap();
        let out = shfl_bw_spmm_execute(&arch, &shfl, &activations).unwrap();
        prop_assert!(out.output.approx_eq(&reference, 3e-2).unwrap());

        // Block-wise kernel (pad columns to a multiple of the block size by
        // constructing over the same matrix when possible).
        if weights.cols() % v == 0 {
            let bsr = BlockSparseMatrix::from_dense(&weights, v).unwrap();
            let out = block_wise_spmm_execute(&arch, &bsr, &activations).unwrap();
            prop_assert!(out.output.approx_eq(&reference, 3e-2).unwrap());
        }
    }

    #[test]
    fn sparse_kernels_never_report_more_flops_than_dense(
        (weights, activations, v, _seed) in spmm_case()
    ) {
        let arch = GpuArch::v100();
        let vw = VectorWiseMatrix::from_dense(&weights, v).unwrap();
        let out = vector_wise_spmm_execute(&arch, &vw, &activations).unwrap();
        let dense_flops =
            2 * (weights.rows() * weights.cols() * activations.cols()) as u64;
        prop_assert!(out.profile.stats.flops() <= dense_flops);
    }
}
