//! Integration tests asserting the qualitative claims of every reproduced table and
//! figure, using the same experiment runners the benches and the `repro` binary use.
//!
//! These tests intentionally check *orderings and trends* (who wins, where crossovers
//! fall) rather than absolute microseconds — the substrate is a simulator, not the
//! authors' testbed.

use gpu_sim::GpuArch;
use shfl_bench::experiments::speedup::{model_speedup, KernelChoice};
use shfl_bench::experiments::{ablation, analysis, fig1, fig2, fig6, table1};
use shfl_models::workload::DnnModel;

#[test]
fn figure1_tensor_core_sparse_dominates_cuda_core_sparse() {
    for arch in GpuArch::all() {
        let rows = fig1::run(&arch);
        for row in &rows {
            assert!(
                row.tensor_core_sparse > row.cuda_core_sparse,
                "{}: at density {:.2} the tensor-core sparse kernel should beat the \
                 CUDA-core sparse kernel",
                arch.name,
                row.density
            );
        }
        // The sparse tensor-core curve must beat the dense tensor-core baseline well
        // before 95% sparsity — the paper's region C.
        let at_75 = rows
            .iter()
            .find(|r| (r.density - 0.25).abs() < 1e-9)
            .unwrap();
        assert!(at_75.tensor_core_sparse > at_75.tensor_core_dense);
    }
}

#[test]
fn figure2_unstructured_never_reaches_practical_speedup() {
    let points = fig2::run();
    for p in points.iter().filter(|p| p.label == "Unstructured") {
        assert!(
            p.speedup < 1.0,
            "unstructured at {:.0}% shows speedup {:.2}",
            p.sparsity * 100.0,
            p.speedup
        );
    }
    for p in points.iter().filter(|p| p.label.starts_with("Shfl-BW")) {
        assert!(p.speedup > 1.0);
    }
}

#[test]
fn figure6_shfl_bw_speedup_grows_with_sparsity_and_v() {
    let arch = GpuArch::t4();
    let s75_v32 = model_speedup(
        &arch,
        DnnModel::Transformer,
        8,
        128,
        0.75,
        KernelChoice::ShflBw(32),
    )
    .unwrap();
    let s75_v64 = model_speedup(
        &arch,
        DnnModel::Transformer,
        8,
        128,
        0.75,
        KernelChoice::ShflBw(64),
    )
    .unwrap();
    let s85_v64 = model_speedup(
        &arch,
        DnnModel::Transformer,
        8,
        128,
        0.85,
        KernelChoice::ShflBw(64),
    )
    .unwrap();
    assert!(
        s75_v64 >= s75_v32 * 0.98,
        "V=64 ({s75_v64:.2}) should not trail V=32 ({s75_v32:.2})"
    );
    assert!(s85_v64 > s75_v64, "85% sparsity should beat 75%");
}

#[test]
fn figure6_headline_ordering_matches_the_paper() {
    let headline = fig6::headline_transformer_speedups();
    assert_eq!(headline.len(), 3);
    let (v100, t4, a100) = (headline[0].1, headline[1].1, headline[2].1);
    assert!(v100 > 1.0 && t4 > 1.0 && a100 > 1.0);
    assert!(t4 > v100 && t4 > a100, "T4 should show the largest speedup");
}

#[test]
fn figure6_balanced_sparsity_gives_only_modest_gains_on_a100() {
    let arch = GpuArch::a100();
    let balanced = model_speedup(
        &arch,
        DnnModel::Transformer,
        8,
        128,
        0.5,
        KernelChoice::Balanced2in4,
    )
    .unwrap();
    let shfl_50 = model_speedup(
        &arch,
        DnnModel::Transformer,
        8,
        128,
        0.5,
        KernelChoice::ShflBw(64),
    )
    .unwrap();
    let shfl_75 = model_speedup(
        &arch,
        DnnModel::Transformer,
        8,
        128,
        0.75,
        KernelChoice::ShflBw(64),
    )
    .unwrap();
    // Balanced sparsity is stuck at a fixed, modest gain; Shfl-BW is comparable at the
    // same 50% sparsity and clearly ahead once the sparsity it can actually express
    // (75%+) is used — the paper's argument for flexibility in the sparsity level.
    assert!(
        balanced > 0.95 && balanced < 1.4,
        "2:4 speedup {balanced:.2} should be modest"
    );
    assert!(
        shfl_50 > 0.85 * balanced,
        "Shfl-BW at 50% ({shfl_50:.2}) should be comparable to 2:4 ({balanced:.2})"
    );
    assert!(
        shfl_75 > balanced,
        "Shfl-BW at 75% ({shfl_75:.2}) should clearly beat 2:4 ({balanced:.2})"
    );
}

#[test]
fn table1_orderings_hold_at_both_sparsities() {
    let rows = table1::run();
    for &sparsity in &[0.8, 0.9] {
        let get = |pattern: &str| {
            rows.iter()
                .find(|r| r.pattern == pattern && (r.sparsity - sparsity).abs() < 1e-9)
        };
        let vw = get("VW,V=32").unwrap();
        let shfl = get("Shfl-BW,V=32").unwrap();
        assert!(shfl.transformer_bleu > vw.transformer_bleu);
        assert!(shfl.gnmt_bleu > vw.gnmt_bleu);
        assert!(shfl.resnet_top1 > vw.resnet_top1);
    }
}

#[test]
fn ablations_confirm_free_shuffling_and_useful_prefetch() {
    for row in ablation::shuffle_overhead() {
        assert!((0.9..=1.15).contains(&row.shfl_over_vw));
    }
    for row in ablation::prefetch_ablation() {
        assert!(row.without_prefetch_us >= row.with_prefetch_us);
    }
}

#[test]
fn analysis_reproduces_the_flexibility_hierarchy() {
    let report = analysis::run();
    assert!(report.paper_example_ln_multiplier > 700.0);
    let ln = |label: &str| {
        report
            .rows
            .iter()
            .find(|r| r.pattern.label() == label)
            .unwrap()
            .ln_candidates
    };
    assert!(ln("unstructured") > ln("Shfl-BW,V=32"));
    assert!(ln("Shfl-BW,V=32") > ln("VW,V=32"));
    assert!(ln("VW,V=32") > ln("BW,V=32"));
}
