//! Cross-crate integration tests: the full prune → compress → execute → evaluate
//! pipeline the paper describes, spanning `shfl-pruning`, `shfl-core`, `shfl-kernels`,
//! `gpu-sim` and `shfl-models`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use shfl_bw_repro::prelude::*;
use shfl_core::pattern::{is_shfl_bw, is_vector_wise};
use shfl_kernels::gemm::dense_gemm_execute;
use shfl_kernels::gemm::dense_gemm_profile;
use shfl_kernels::spmm::shfl_bw::{shfl_bw_spmm_execute, shfl_bw_spmm_profile};
use shfl_pruning::trainer::{finetune_pruned_model, TrainerConfig};
use shfl_pruning::VectorWisePruner;

/// The full pipeline on one linear layer: search the pattern, compress, execute the
/// simulated kernel, and check both numerics and the structural invariants.
#[test]
fn prune_compress_execute_roundtrip() {
    let (m, k, n, v) = (128usize, 256usize, 64usize, 16usize);
    let sparsity = 0.75;
    let mut rng = StdRng::seed_from_u64(1);
    let weights = DenseMatrix::random(&mut rng, m, k);
    let activations = DenseMatrix::random(&mut rng, k, n);

    // Pattern search (Figure 5).
    let pruner = ShflBwPruner::new(v);
    let result = pruner
        .prune_with_permutation(&weights.abs(), 1.0 - sparsity)
        .expect("search succeeds");
    assert!((result.mask.density() - 0.25).abs() < 0.02);
    assert!(is_shfl_bw(&result.mask, v));
    let shuffled = result.mask.permuted_rows(&result.permutation).unwrap();
    assert!(is_vector_wise(&shuffled, v));

    // Compression (Figure 4 step (a)).
    let pruned = result.mask.apply(&weights).unwrap();
    let sparse = ShflBwMatrix::from_dense_with_permutation(&pruned, &result.permutation, v)
        .expect("compression succeeds");
    assert_eq!(sparse.to_dense(), pruned);

    // Kernel execution on every architecture, verified against the dense reference.
    for arch in GpuArch::all() {
        let dense_out = dense_gemm_execute(&arch, &pruned, &activations).unwrap();
        let sparse_out = shfl_bw_spmm_execute(&arch, &sparse, &activations).unwrap();
        assert!(
            sparse_out
                .output
                .approx_eq(&dense_out.output, 2e-2)
                .unwrap(),
            "{}: sparse kernel output diverges from the dense reference",
            arch.name
        );
        // The sparse kernel moves less DRAM traffic than the dense kernel would for
        // the same layer.
        let dense_profile = dense_gemm_profile(&arch, m, n, k);
        assert!(sparse_out.profile.stats.dram_bytes() < dense_profile.stats.dram_bytes());
    }
}

/// The speed–accuracy story end to end: Shfl-BW must simultaneously (a) keep more
/// importance than vector-wise pruning, (b) degrade a trainable student less, and
/// (c) be at least as fast as vector-wise under the kernel cost model.
#[test]
fn shfl_bw_dominates_vector_wise_in_both_axes() {
    let (m, k, v) = (128usize, 256usize, 16usize);
    let density = 0.25;
    let mut rng = StdRng::seed_from_u64(2);
    let weights = DenseMatrix::random(&mut rng, m, k);
    let scores = weights.abs();

    let shfl = ShflBwPruner::new(v)
        .prune_with_permutation(&scores, density)
        .unwrap();
    let vw_mask = VectorWisePruner::new(v).prune(&scores, density).unwrap();

    // (a) retained importance.
    let vw_score = vw_mask.retained_score(&scores).unwrap();
    assert!(shfl.retained_score >= vw_score);

    // (b) trainable-student degradation.
    let config = TrainerConfig {
        steps: 80,
        ..TrainerConfig::default()
    };
    let shfl_ft = finetune_pruned_model(&weights, &shfl.mask, config).unwrap();
    let vw_ft = finetune_pruned_model(&weights, &vw_mask, config).unwrap();
    assert!(shfl_ft.degradation() <= vw_ft.degradation() * 1.10);

    // (c) kernel speed parity (shuffling is free).
    let pruned_shfl = shfl.mask.apply(&weights).unwrap();
    let sparse_shfl =
        ShflBwMatrix::from_dense_with_permutation(&pruned_shfl, &shfl.permutation, v).unwrap();
    let pruned_vw = vw_mask.apply(&weights).unwrap();
    let identity: Vec<usize> = (0..m).collect();
    let sparse_vw = ShflBwMatrix::from_dense_with_permutation(&pruned_vw, &identity, v).unwrap();
    let arch = GpuArch::v100();
    let t_shfl = shfl_bw_spmm_profile(&arch, &sparse_shfl, 64).time_us();
    let t_vw = shfl_bw_spmm_profile(&arch, &sparse_vw, 64).time_us();
    assert!(t_shfl <= t_vw * 1.05);
}

/// The accuracy proxy and the kernel model agree with the paper's end-to-end message:
/// at 75% sparsity Shfl-BW gives a practical speedup on every GPU while the proxy
/// quality stays close to the dense model.
#[test]
fn paper_headline_claims_hold_end_to_end() {
    let proxy = AccuracyModel::new(DnnModel::Transformer);
    let quality = proxy.evaluate(SparsePattern::ShflBw { v: 64 }, 0.75);
    assert!(proxy.dense_metric() - quality < 1.5);

    // Kernel side on a Transformer FFN layer shape.
    let (m, k, n, v) = (1024usize, 1024usize, 256usize, 64usize);
    let mut rng = StdRng::seed_from_u64(3);
    let weights = DenseMatrix::random(&mut rng, m, k);
    let mask = ShflBwPruner::new(v).prune(&weights.abs(), 0.25).unwrap();
    let pruned = mask.apply(&weights).unwrap();
    let perm = shfl_core::pattern::shfl_bw_grouping_permutation(&mask, v).unwrap();
    let sparse = ShflBwMatrix::from_dense_with_permutation(&pruned, &perm, v).unwrap();
    for arch in GpuArch::all() {
        let dense_t = dense_gemm_profile(&arch, m, n, k).time_us();
        let sparse_t = shfl_bw_spmm_profile(&arch, &sparse, n).time_us();
        assert!(
            sparse_t < dense_t,
            "{}: no practical speedup at 75% sparsity",
            arch.name
        );
    }
}
