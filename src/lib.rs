//! # shfl-bw-repro — workspace facade
//!
//! This crate is the root package of the Shfl-BW reproduction workspace. It exists to
//! host the runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`), and re-exports the member crates so downstream users can depend on a
//! single package:
//!
//! * [`core`](shfl_core) — matrices, masks, sparsity patterns, sparse formats,
//!   flexibility / reuse analysis,
//! * [`gpu`](gpu_sim) — the GPU substrate simulator (architecture presets, MMA model,
//!   cost model),
//! * [`kernels`](shfl_kernels) — simulated dense and sparse GPU kernels,
//! * [`pruning`](shfl_pruning) — the pattern pruners and the Shfl-BW search,
//! * [`models`](shfl_models) — Transformer / GNMT / ResNet-50 workloads and the
//!   accuracy proxy,
//! * [`serving`](shfl_serving) — the bucketed, multi-stream serving stack
//!   (N-bucket plan cache, padding/splitting, request scheduler).
//!
//! ```
//! use shfl_bw_repro::prelude::*;
//!
//! let arch = GpuArch::t4();
//! let profile = shfl_bw_repro::kernels::gemm::dense_gemm_profile(&arch, 1024, 256, 1024);
//! assert!(profile.time_us() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use gpu_sim as gpu;
pub use shfl_core as core;
pub use shfl_kernels as kernels;
pub use shfl_models as models;
pub use shfl_pruning as pruning;
pub use shfl_serving as serving;

/// Commonly used items across the workspace, for glob import in examples.
pub mod prelude {
    pub use gpu_sim::{GpuArch, KernelStats};
    pub use shfl_core::{
        BinaryMask, BucketPolicy, DenseMatrix, PackedPanels, ShflBwMatrix, SparsePattern,
        VectorWiseMatrix,
    };
    pub use shfl_kernels::{ConvPlan, GemmPlan, KernelOutput, KernelProfile, PlanCache, SpmmPlan};
    pub use shfl_models::{AccuracyModel, DnnModel, EngineConfig, ModelEngine};
    pub use shfl_pruning::{Pruner, ShflBwPruner};
    pub use shfl_serving::{Scheduler, ServingEngine, ServingError};
}
