//! Accuracy–speedup trade-off exploration (the paper's Figure 2 / Table 1 workflow):
//! sweep patterns and sparsities, estimate both pruned-model quality (via the accuracy
//! proxy) and kernel speedup, and print the Pareto-style table a practitioner would
//! use to pick an operating point.
//!
//! Run with: `cargo run --release --example accuracy_speedup_tradeoff`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shfl_bw_repro::prelude::*;
use shfl_core::formats::{CsrMatrix, VectorWiseMatrix};
use shfl_kernels::gemm::dense_gemm_profile;
use shfl_kernels::spmm::cuda_core::cuda_core_spmm_profile;
use shfl_kernels::spmm::shfl_bw::shfl_bw_spmm_profile;
use shfl_kernels::spmm::vector_wise::{vector_wise_spmm_profile, VectorWiseKernelConfig};

/// Representative GNMT LSTM-gate layer (the shape Figure 2 is most sensitive to).
const SHAPE: (usize, usize, usize) = (4096, 128, 2048);

fn structured_weights(rng: &mut StdRng, v: usize, density: f64) -> DenseMatrix {
    let (m, _, k) = SHAPE;
    let groups = m / v;
    let keep: Vec<Vec<bool>> = (0..groups)
        .map(|_| (0..k).map(|_| rng.gen_bool(density)).collect())
        .collect();
    DenseMatrix::from_fn(m, k, |r, c| {
        if keep[r / v][c] {
            rng.gen_range(-0.1..0.1)
        } else {
            0.0
        }
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = GpuArch::v100();
    let proxy = AccuracyModel::new(DnnModel::Gnmt);
    let (m, n, k) = SHAPE;
    let dense_time = dense_gemm_profile(&arch, m, n, k).time_us();
    let mut rng = StdRng::seed_from_u64(3);

    println!(
        "GNMT on {}: dense GEMM layer time {:.1} us",
        arch.name, dense_time
    );
    println!(
        "\npattern            sparsity   {:>6}   speedup",
        proxy.metric_name()
    );

    for &sparsity in &[0.8, 0.85, 0.9] {
        let density = 1.0 - sparsity;

        // Unstructured (Sputnik kernel).
        let unstructured = DenseMatrix::from_fn(m, k, |_, _| {
            if rng.gen_bool(density) {
                rng.gen_range(-0.1..0.1)
            } else {
                0.0
            }
        });
        let csr = CsrMatrix::from_dense(&unstructured);
        let t = cuda_core_spmm_profile(&arch, &csr, n).time_us();
        println!(
            "{:18} {:7.0}%  {:6.2}  {:6.2}x",
            "Unstructured",
            sparsity * 100.0,
            proxy.evaluate(SparsePattern::Unstructured, sparsity),
            dense_time / t
        );

        // Vector-wise and Shfl-BW at several V.
        for &v in &[32usize, 64, 128] {
            let weights = structured_weights(&mut rng, v, density);
            let vw = VectorWiseMatrix::from_dense(&weights, v)?;
            let identity: Vec<usize> = (0..m).collect();
            let shfl = ShflBwMatrix::from_dense_with_permutation(&weights, &identity, v)?;

            if v == 32 {
                let t_vw = vector_wise_spmm_profile(&arch, &vw, n, &VectorWiseKernelConfig::ours())
                    .time_us();
                println!(
                    "{:18} {:7.0}%  {:6.2}  {:6.2}x",
                    format!("Vector-wise V={v}"),
                    sparsity * 100.0,
                    proxy.evaluate(SparsePattern::VectorWise { v }, sparsity),
                    dense_time / t_vw
                );
            }
            let t_shfl = shfl_bw_spmm_profile(&arch, &shfl, n).time_us();
            println!(
                "{:18} {:7.0}%  {:6.2}  {:6.2}x",
                format!("Shfl-BW V={v}"),
                sparsity * 100.0,
                proxy.evaluate(SparsePattern::ShflBw { v }, sparsity),
                dense_time / t_shfl
            );
        }
        println!();
    }
    println!("(compare with the paper's Figure 2: unstructured cannot exceed 1x while");
    println!(" Shfl-BW reaches practical speedups with a sub-BLEU-point quality cost)");
    Ok(())
}
