//! Transformer sparse-inference walkthrough: prune every computation-intensive layer
//! of Transformer big to Shfl-BW at 75% sparsity and estimate the end-to-end speedup
//! of the GEMM layers on V100, T4 and A100 — the paper's headline experiment.
//!
//! Run with: `cargo run --release --example transformer_sparse_inference`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shfl_bw_repro::prelude::*;
use shfl_kernels::gemm::dense_gemm_profile;
use shfl_kernels::spmm::shfl_bw::shfl_bw_spmm_profile;
use shfl_models::workload::model_workload;

/// Builds a Shfl-BW-structured weight matrix for a layer shape (each group of `v` rows
/// keeps a random column subset at the requested density).
fn synth_shfl_weights(
    rng: &mut StdRng,
    m: usize,
    k: usize,
    v: usize,
    density: f64,
) -> Result<ShflBwMatrix, shfl_core::Error> {
    let m_padded = m.div_ceil(v) * v;
    let groups = m_padded / v;
    let keep: Vec<Vec<bool>> = (0..groups)
        .map(|_| (0..k).map(|_| rng.gen_bool(density)).collect())
        .collect();
    let dense = DenseMatrix::from_fn(m_padded, k, |r, c| {
        if keep[r / v][c] {
            rng.gen_range(-0.1..0.1)
        } else {
            0.0
        }
    });
    let identity: Vec<usize> = (0..m_padded).collect();
    ShflBwMatrix::from_dense_with_permutation(&dense, &identity, v)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sparsity = 0.75;
    let v = 64;
    let (batch, seq_len) = (8, 128);
    let mut rng = StdRng::seed_from_u64(7);

    println!(
        "Transformer big, batch {batch} x seq {seq_len}, {:.0}% sparsity, Shfl-BW V={v}\n",
        sparsity * 100.0
    );

    for arch in GpuArch::all() {
        let mut dense_total_us = 0.0;
        let mut sparse_total_us = 0.0;
        println!("=== {arch} ===");
        for layer in model_workload(DnnModel::Transformer, batch, seq_len) {
            let (m, n, k) = layer.kind.gemm_shape();
            let weights = synth_shfl_weights(&mut rng, m, k, v, 1.0 - sparsity)?;
            let dense = dense_gemm_profile(&arch, m, n, k);
            let sparse = shfl_bw_spmm_profile(&arch, &weights, n);
            dense_total_us += dense.time_us() * layer.count as f64;
            sparse_total_us += sparse.time_us() * layer.count as f64;
            println!(
                "  {:24} {:4}x  M/N/K={:5}/{:5}/{:5}  dense {:8.1} us  shfl-bw {:8.1} us  ({:.2}x)",
                layer.name,
                layer.count,
                m,
                n,
                k,
                dense.time_us(),
                sparse.time_us(),
                dense.time_us() / sparse.time_us()
            );
        }
        println!(
            "  => model GEMM layers: dense {:.0} us, Shfl-BW {:.0} us, speedup {:.2}x\n",
            dense_total_us,
            sparse_total_us,
            dense_total_us / sparse_total_us
        );
    }
    println!("(paper reports 1.81x on V100, 4.18x on T4 and 1.90x on A100 at 75% sparsity)");
    Ok(())
}
