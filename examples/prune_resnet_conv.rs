//! Prune a ResNet-50 convolution layer to Shfl-BW and run the sparse implicit-GEMM
//! convolution kernel, verifying the output against a direct convolution and
//! reporting the estimated speedup over the dense (cuDNN-like) kernel.
//!
//! Run with: `cargo run --release --example prune_resnet_conv`

use rand::rngs::StdRng;
use rand::SeedableRng;
use shfl_bw_repro::prelude::*;
use shfl_kernels::conv::{
    conv2d_dense_profile, conv2d_reference, conv2d_shfl_bw_execute, Conv2dParams, Tensor4,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The conv4.3x3 bottleneck layer of ResNet-50: 256 -> 256 channels, 14x14 maps.
    let params = Conv2dParams {
        batch: 4,
        in_channels: 256,
        out_channels: 256,
        input_h: 14,
        input_w: 14,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
        dilation: 1,
    };
    let sparsity = 0.75;
    let v = 32;

    let (m, _, k) = params.implicit_gemm_shape();
    println!(
        "ResNet-50 conv4.3x3: implicit GEMM M/K = {m}/{k}, N = {}, {:.0}% sparsity, V={v}",
        params.batch * params.output_h() * params.output_w(),
        sparsity * 100.0
    );

    // 1. Prune the flattened filter matrix with the Shfl-BW search (Figure 5).
    let mut rng = StdRng::seed_from_u64(11);
    let filters = DenseMatrix::random(&mut rng, m, k);
    let pruner = ShflBwPruner::new(v);
    let result = pruner.prune_with_permutation(&filters.abs(), 1.0 - sparsity)?;
    let pruned = result.mask.apply(&filters)?;
    println!(
        "pruned filters: {:.1}% density, retained importance {:.1}",
        result.mask.density() * 100.0,
        result.retained_score
    );

    // 2. Compress and run the sparse convolution, verifying against the direct
    //    convolution of the pruned filters.
    let weights = ShflBwMatrix::from_dense_with_permutation(&pruned, &result.permutation, v)?;
    let input = Tensor4::random(&mut rng, params.batch, params.in_channels, 14, 14);
    let arch = GpuArch::a100();
    let (output, sparse_profile) = conv2d_shfl_bw_execute(&arch, &weights, &input, &params)?;
    let reference = conv2d_reference(&input, &pruned, &params);
    println!(
        "functional check: max |difference| vs direct convolution = {:.2e}",
        output.max_abs_diff(&reference)
    );

    // 3. Estimated speedup over the dense implicit-GEMM convolution on each GPU.
    println!("\nestimated conv kernel time:");
    for arch in GpuArch::all() {
        let dense = conv2d_dense_profile(&arch, &params);
        let sparse = shfl_kernels::conv::conv2d_shfl_bw_profile(&arch, &weights, &params);
        println!(
            "  {:5}: dense {:8.1} us, Shfl-BW {:8.1} us  ->  {:.2}x",
            arch.name,
            dense.time_us(),
            sparse.time_us(),
            dense.time_us() / sparse.time_us()
        );
    }
    let _ = sparse_profile;
    Ok(())
}
