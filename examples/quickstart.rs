//! Quickstart: prune a weight matrix into the Shfl-BW pattern, compress it, run the
//! simulated Shfl-BW SpMM kernel, and compare its estimated time against the dense
//! tensor-core baseline on all three GPUs the paper evaluates.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use shfl_bw_repro::prelude::*;
use shfl_kernels::gemm::{dense_gemm_execute, dense_gemm_profile};
use shfl_kernels::spmm::shfl_bw::{shfl_bw_spmm_execute, shfl_bw_spmm_profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A linear layer: 1024 output features, 1024 input features, 256 tokens.
    let (m, k, n) = (1024usize, 1024usize, 256usize);
    let sparsity = 0.75;
    let v = 32;

    let mut rng = StdRng::seed_from_u64(42);
    let weights = DenseMatrix::random(&mut rng, m, k);
    let activations = DenseMatrix::random(&mut rng, k, n);

    // 1. Search the Shfl-BW pattern (Figure 5 of the paper): relaxed unstructured
    //    pre-pruning, K-Means row grouping, vector-wise pruning, reverse shuffle.
    let pruner = ShflBwPruner::new(v);
    let result = pruner.prune_with_permutation(&weights.abs(), 1.0 - sparsity)?;
    println!(
        "pruned to {:.1}% density, retained importance score {:.1}",
        result.mask.density() * 100.0,
        result.retained_score
    );

    // 2. Compress into the Shfl-BW format using the discovered row grouping.
    let pruned_weights = result.mask.apply(&weights)?;
    let sparse =
        ShflBwMatrix::from_dense_with_permutation(&pruned_weights, &result.permutation, v)?;
    println!(
        "compressed: {} vectors across {} shuffled groups, {} bytes of metadata",
        sparse.stored_vectors(),
        sparse.num_groups(),
        sparse.metadata_bytes()
    );

    // 3. Functional check on one GPU: the sparse kernel output matches the dense GEMM
    //    applied to the pruned weights.
    let v100 = GpuArch::v100();
    let dense_out = dense_gemm_execute(&v100, &pruned_weights, &activations)?;
    let sparse_out = shfl_bw_spmm_execute(&v100, &sparse, &activations)?;
    let max_diff = sparse_out.output.max_abs_diff(&dense_out.output)?;
    println!("functional check: max |difference| vs dense reference = {max_diff:.2e}");

    // 4. Estimated speedup over the dense baseline on V100, T4 and A100.
    println!(
        "\nestimated kernel time at {:.0}% sparsity (V = {v}):",
        sparsity * 100.0
    );
    for arch in GpuArch::all() {
        let dense = dense_gemm_profile(&arch, m, n, k);
        let shfl = shfl_bw_spmm_profile(&arch, &sparse, n);
        println!(
            "  {:5}: dense {:8.2} us, Shfl-BW {:8.2} us  ->  {:4.2}x speedup ({})",
            arch.name,
            dense.time_us(),
            shfl.time_us(),
            dense.time_us() / shfl.time_us(),
            shfl.timing.bound
        );
    }
    Ok(())
}
